//! S3 property: toggle counts are an engine-, word-width-, and
//! jobs-invariant of the circuit.
//!
//! The parallel engine counts toggles word-parallel over its bit-fields
//! (`popcount(f ^ (f >> 1))`, trimming/alignment-aware); every other
//! engine derives them from complete histories. On random layered
//! netlists those must agree toggle-for-toggle with the transitions of
//! the sequential reference waveforms — per net, per time slot, for
//! both 32- and 64-bit words, and with the batch runner at any shard
//! count.

use uds_core::vectors::RandomVectors;
use uds_core::{
    run_batch_observed, ActivityProfiler, BatchActivityObserver, Engine, GuardedSimulator,
    MonitoringEngineFactory, Telemetry, UnitDelaySimulator, WordWidth,
};
use uds_netlist::generators::random::{layered, LayeredConfig};
use uds_netlist::{levelize, Netlist, ResourceLimits};

/// The randomized corpus: varied depth, gate mix, and locality so
/// trimming and shift elimination all have something to chew on.
fn corpus() -> Vec<Netlist> {
    let mut configs = [
        LayeredConfig::new("act-a", 60, 6),
        LayeredConfig::new("act-b", 200, 33),
        LayeredConfig::new("act-c", 120, 17),
    ];
    configs[1].xor_fraction = 0.4;
    configs[1].seed = 0xA11CE;
    configs[2].locality = 0.9;
    configs[2].inverter_fraction = 0.3;
    configs[2].seed = 0xB0B;
    configs
        .iter()
        .map(|c| layered(c).expect("satisfiable config"))
        .collect()
}

/// A sim for `engine` at `word` with every net observable.
fn monitored(netlist: &Netlist, engine: Engine, word: WordWidth) -> GuardedSimulator {
    GuardedSimulator::with_factory(
        netlist,
        ResourceLimits::unlimited(),
        &[engine],
        Box::new(MonitoringEngineFactory::with_word(word)),
    )
    .expect("combinational netlist compiles on every engine")
}

fn stimulus(netlist: &Netlist, vectors: usize) -> Vec<Vec<bool>> {
    RandomVectors::new(netlist.primary_inputs().len(), 0xD5EED)
        .take(vectors)
        .collect()
}

/// Toggle times of `net` re-derived from the history, independently of
/// `for_each_toggle`'s own default implementation.
fn history_toggles(sim: &dyn UnitDelaySimulator, net: uds_netlist::NetId) -> Vec<u32> {
    let history = sim.history(net).expect("monitored net has a history");
    assert_eq!(history.len() as u32, sim.depth() + 1);
    (1..history.len())
        .filter(|&t| history[t] != history[t - 1])
        .map(|t| t as u32)
        .collect()
}

/// Per-vector, per-net: the word-parallel toggle visitor must report
/// exactly the transitions visible in the same engine's own waveform —
/// and the profiler totals must be identical across every engine and
/// word width.
#[test]
fn toggle_counts_are_engine_and_word_width_invariant() {
    for netlist in corpus() {
        let levels = levelize(&netlist).expect("combinational");
        let stimulus = stimulus(&netlist, 12);
        let mut reference: Option<(ActivityProfiler, String)> = None;
        for engine in Engine::ALL {
            for word in [WordWidth::W32, WordWidth::W64] {
                let mut sim = monitored(&netlist, engine, word);
                let mut profiler = ActivityProfiler::for_netlist(&netlist, &levels);
                for vector in &stimulus {
                    sim.simulate_vector(vector).expect("in-budget");
                    let active = sim.active_simulator();
                    for net in netlist.net_ids() {
                        let mut visited = Vec::new();
                        let count = active
                            .for_each_toggle(net, &mut |t| visited.push(t))
                            .expect("monitored build observes every net");
                        assert_eq!(count as usize, visited.len());
                        // Visit order is unspecified (shift-eliminated
                        // fields are not time-monotone); the *set* of
                        // toggle times is the invariant.
                        visited.sort_unstable();
                        assert_eq!(
                            visited,
                            history_toggles(active, net),
                            "{engine} w{} {}: net {net:?} toggle times disagree \
                             with this engine's own waveform",
                            word.bits(),
                            netlist.name(),
                        );
                    }
                    profiler.record_vector(active);
                }
                assert_eq!(profiler.unobserved_nets(), 0);
                match &reference {
                    None => reference = Some((profiler, format!("{engine}/w{}", word.bits()))),
                    Some((reference, from)) => {
                        assert_eq!(
                            reference.total_toggles(),
                            profiler.total_toggles(),
                            "{}: {engine} w{} total disagrees with {from}",
                            netlist.name(),
                            word.bits(),
                        );
                        assert_eq!(reference.per_slot(), profiler.per_slot());
                        for net in netlist.net_ids() {
                            assert_eq!(reference.net_toggles(net), profiler.net_toggles(net));
                        }
                    }
                }
            }
        }
    }
}

/// The event-driven baseline's own toggle counter (incremented per
/// committed event at time >= 1) agrees with the profiler built from
/// its waveforms.
#[test]
fn eventsim_toggle_counter_matches_profiled_toggles() {
    for netlist in corpus() {
        let levels = levelize(&netlist).expect("combinational");
        let mut sim = monitored(&netlist, Engine::EventDriven, WordWidth::default());
        let mut profiler = ActivityProfiler::for_netlist(&netlist, &levels);
        for vector in &stimulus(&netlist, 12) {
            sim.simulate_vector(vector).expect("in-budget");
            profiler.record_vector(sim.active_simulator());
        }
        let counters = sim.active_simulator().run_counters();
        let counted = counters
            .iter()
            .find(|(name, _)| *name == "eventsim.toggles")
            .expect("event-driven engine exports eventsim.toggles")
            .1;
        assert_eq!(
            counted,
            profiler.total_toggles(),
            "{}: the engine's committed-event count must equal the \
             waveform-derived toggle count",
            netlist.name(),
        );
    }
}

/// Sharding the stream over workers never changes what toggles: the
/// merged batch profile equals the sequential one, for every jobs
/// value, because each shard is seeded with the zero-delay settled
/// state at its boundary.
#[test]
fn batch_sharding_preserves_toggle_counts() {
    let netlist = &corpus()[1];
    let levels = levelize(netlist).expect("combinational");
    let stimulus = stimulus(netlist, 40);

    let mut sequential = monitored(netlist, Engine::ParallelPathTracingTrimming, WordWidth::W64);
    let mut expected = ActivityProfiler::for_netlist(netlist, &levels);
    for vector in &stimulus {
        sequential.simulate_vector(vector).expect("in-budget");
        expected.record_vector(sequential.active_simulator());
    }

    for jobs in [1, 2, 3, 5] {
        let telemetry = Telemetry::new();
        let prototype = GuardedSimulator::with_factory_telemetry(
            netlist,
            ResourceLimits::unlimited(),
            &[Engine::ParallelPathTracingTrimming],
            Box::new(MonitoringEngineFactory::with_word(WordWidth::W64)),
            telemetry.clone(),
        )
        .expect("compiles");
        let observer = BatchActivityObserver::new(netlist, &levels, stimulus.len(), jobs);
        run_batch_observed(
            netlist,
            &prototype,
            &stimulus,
            jobs,
            Some(&telemetry),
            &observer,
        )
        .expect("batch succeeds");
        let merged = observer.merged();
        assert_eq!(merged.vectors(), expected.vectors());
        assert_eq!(
            merged.total_toggles(),
            expected.total_toggles(),
            "jobs={jobs} changed the total toggle count"
        );
        assert_eq!(merged.per_slot(), expected.per_slot(), "jobs={jobs}");
        for net in netlist.net_ids() {
            assert_eq!(
                merged.net_toggles(net),
                expected.net_toggles(net),
                "jobs={jobs}: net {net:?}"
            );
        }
    }
}
