//! S5: the `/metrics` exposition is valid Prometheus text format —
//! structurally, lexically, and through a hand-rolled exposition
//! parser (the same discipline `trace_validity.rs` applies to Chrome
//! traces: a scraper silently drops what it cannot parse, so these
//! checks are the difference between "bytes were served" and "a
//! dashboard renders").
//!
//! Checked against the text exposition format v0.0.4: metric names in
//! `[a-zA-Z_:][a-zA-Z0-9_:]*`, label names in `[a-zA-Z_][a-zA-Z0-9_]*`,
//! one `# HELP` and one `# TYPE` per family (before its samples),
//! label values escaped (`\\`, `\n`, `\"`) and round-tripping exactly,
//! summaries carrying `quantile` series plus `_sum`/`_count`.

use std::collections::BTreeMap;

use uds_core::telemetry::prom::{escape_label_value, metric_name, render, CONTENT_TYPE};
use uds_core::{record_build_info, Telemetry};

/// One parsed sample line.
#[derive(Debug, PartialEq)]
struct Sample {
    name: String,
    labels: Vec<(String, String)>,
    value: String,
}

/// A parsed exposition: HELP/TYPE per family plus samples in order.
#[derive(Debug, Default)]
struct Exposition {
    help: BTreeMap<String, String>,
    kind: BTreeMap<String, String>,
    samples: Vec<Sample>,
}

fn is_valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    let Some(first) = chars.next() else {
        return false;
    };
    (first.is_ascii_alphabetic() || first == '_' || first == ':')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn is_valid_label_name(name: &str) -> bool {
    let mut chars = name.chars();
    let Some(first) = chars.next() else {
        return false;
    };
    (first.is_ascii_alphabetic() || first == '_')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Parses a `key="value"` label block body, undoing the exposition
/// escapes. Panics (failing the test) on any malformed byte.
fn parse_labels(block: &str) -> Vec<(String, String)> {
    let mut labels = Vec::new();
    let mut rest = block;
    while !rest.is_empty() {
        let eq = rest.find('=').expect("label has `=`");
        let name = &rest[..eq];
        assert!(is_valid_label_name(name), "label name `{name}`");
        rest = rest[eq + 1..]
            .strip_prefix('"')
            .expect("label value opens with a quote");
        let mut value = String::new();
        let mut chars = rest.char_indices();
        let close = loop {
            let (i, c) = chars.next().expect("label value closes");
            match c {
                '"' => break i,
                '\\' => match chars.next().expect("escape has a target").1 {
                    'n' => value.push('\n'),
                    '\\' => value.push('\\'),
                    '"' => value.push('"'),
                    other => panic!("unknown escape `\\{other}`"),
                },
                c => value.push(c),
            }
        };
        labels.push((name.to_owned(), value));
        rest = &rest[close + 1..];
        rest = rest.strip_prefix(',').unwrap_or(rest);
    }
    labels
}

/// Parses a full exposition document, asserting line-level conformance
/// as it goes.
fn parse_exposition(text: &str) -> Exposition {
    let mut doc = Exposition::default();
    for line in text.lines() {
        assert!(!line.is_empty(), "no blank lines in the exposition");
        if let Some(comment) = line.strip_prefix("# ") {
            let (keyword, rest) = comment.split_once(' ').expect("comment keyword");
            let (name, payload) = rest.split_once(' ').expect("comment metric name");
            match keyword {
                "HELP" => {
                    assert!(
                        doc.help
                            .insert(name.to_owned(), payload.to_owned())
                            .is_none(),
                        "HELP repeated for {name}"
                    );
                }
                "TYPE" => {
                    assert!(
                        matches!(payload, "counter" | "gauge" | "summary" | "histogram"),
                        "unknown TYPE `{payload}` for {name}"
                    );
                    assert!(
                        doc.kind
                            .insert(name.to_owned(), payload.to_owned())
                            .is_none(),
                        "TYPE repeated for {name}"
                    );
                }
                other => panic!("unknown comment keyword `{other}`"),
            }
            continue;
        }
        let (series, value) = line.rsplit_once(' ').expect("sample has a value");
        let (name, labels) = match series.split_once('{') {
            Some((name, block)) => (
                name,
                parse_labels(block.strip_suffix('}').expect("label block closes")),
            ),
            None => (series, Vec::new()),
        };
        assert!(is_valid_metric_name(name), "metric name `{name}`");
        value
            .parse::<f64>()
            .unwrap_or_else(|e| panic!("sample value `{value}`: {e}"));
        doc.samples.push(Sample {
            name: name.to_owned(),
            labels,
            value: value.to_owned(),
        });
    }
    doc
}

/// The metric family a sample belongs to (summaries expose `_sum` and
/// `_count` series under their family name; histograms additionally
/// expose `_bucket`).
fn family_of<'a>(doc: &Exposition, sample_name: &'a str) -> &'a str {
    for suffix in ["_sum", "_count"] {
        if let Some(base) = sample_name.strip_suffix(suffix) {
            if doc
                .kind
                .get(base)
                .is_some_and(|k| k == "summary" || k == "histogram")
            {
                return base;
            }
        }
    }
    if let Some(base) = sample_name.strip_suffix("_bucket") {
        if doc.kind.get(base).is_some_and(|k| k == "histogram") {
            return base;
        }
    }
    sample_name
}

/// A registry exercising every exported shape: counters, gauges, a
/// distribution, build info with labels that need escaping, and a
/// sanitized name collision.
fn busy_telemetry() -> Telemetry {
    let telemetry = Telemetry::new();
    telemetry.add("cache.hits", 7);
    telemetry.add("cache.misses", 2);
    telemetry.add("serve.requests", 9);
    telemetry.set_gauge("batch.shards", 4);
    telemetry.set_level("serve.in_flight", 1);
    telemetry.record("serve.simulate_wall_ns", 1_200);
    telemetry.record("serve.simulate_wall_ns", 800);
    telemetry.record("serve.simulate_wall_ns", 2_000);
    let slo = [5, 50, 500];
    telemetry.observe_histogram("serve.request_ms", &slo, 2);
    telemetry.observe_histogram("serve.request_ms", &slo, 30);
    telemetry.observe_histogram("serve.request_ms", &slo, 30);
    telemetry.observe_histogram("serve.request_ms", &slo, 9_000);
    record_build_info(&telemetry, 64);
    telemetry.label("build.nasty", "quote \" slash \\ newline \n done");
    // Two telemetry names that sanitize to one metric name.
    telemetry.add("guard.fallbacks", 1);
    telemetry.add("guard/fallbacks", 1);
    telemetry
}

#[test]
fn content_type_pins_the_exposition_version() {
    assert_eq!(CONTENT_TYPE, "text/plain; version=0.0.4; charset=utf-8");
}

#[test]
fn every_family_has_help_and_type_before_its_samples() {
    let text = render(&busy_telemetry().snapshot());
    let doc = parse_exposition(&text);
    assert!(!doc.samples.is_empty());
    let lines: Vec<&str> = text.lines().collect();
    for sample in &doc.samples {
        let family = family_of(&doc, &sample.name);
        assert!(doc.help.contains_key(family), "{family} has HELP");
        assert!(doc.kind.contains_key(family), "{family} has TYPE");
        // TYPE precedes the first sample of its family.
        let type_at = lines
            .iter()
            .position(|l| l.starts_with(&format!("# TYPE {family} ")))
            .expect("TYPE line present");
        let sample_at = lines
            .iter()
            .position(|l| {
                !l.starts_with('#')
                    && l.strip_prefix(sample.name.as_str())
                        .is_some_and(|rest| rest.starts_with(' ') || rest.starts_with('{'))
            })
            .expect("sample line present");
        assert!(type_at < sample_at, "{family}: TYPE after a sample");
    }
    // And no orphaned metadata: every HELP/TYPE family has samples.
    for family in doc.kind.keys() {
        assert!(
            doc.samples
                .iter()
                .any(|s| family_of(&doc, &s.name) == family),
            "{family} has no samples"
        );
    }
}

#[test]
fn names_and_labels_stay_in_the_legal_charsets() {
    let text = render(&busy_telemetry().snapshot());
    let doc = parse_exposition(&text);
    for sample in &doc.samples {
        assert!(is_valid_metric_name(&sample.name), "{}", sample.name);
        assert!(sample.name.starts_with("uds_"), "{}", sample.name);
        for (label, _) in &sample.labels {
            assert!(is_valid_label_name(label), "{label}");
        }
    }
    // The sanitizer itself is total: arbitrary telemetry names map in.
    for hostile in ["a b", "x/y.z", "über-metric", "1starts_with_digit", ""] {
        assert!(is_valid_metric_name(&metric_name(hostile)), "{hostile:?}");
    }
}

#[test]
fn label_values_round_trip_through_escaping() {
    let nasty = "quote \" slash \\ newline \n done";
    let text = render(&busy_telemetry().snapshot());
    let doc = parse_exposition(&text);
    let build_info = doc
        .samples
        .iter()
        .find(|s| s.name == "uds_build_info")
        .expect("build info sample");
    assert_eq!(build_info.value, "1", "build_info is the constant-1 idiom");
    let roundtripped = build_info
        .labels
        .iter()
        .find(|(k, _)| k == "nasty")
        .map(|(_, v)| v.as_str());
    assert_eq!(roundtripped, Some(nasty), "escaping must invert exactly");
    // And the escaper agrees with the parser's grammar in isolation.
    assert_eq!(
        parse_labels(&format!("x=\"{}\"", escape_label_value(nasty))),
        vec![("x".to_owned(), nasty.to_owned())]
    );
}

#[test]
fn summaries_expose_min_max_sum_count_consistently() {
    let text = render(&busy_telemetry().snapshot());
    let doc = parse_exposition(&text);
    assert_eq!(
        doc.kind
            .get("uds_serve_simulate_wall_ns")
            .map(String::as_str),
        Some("summary")
    );
    let series: BTreeMap<String, &str> = doc
        .samples
        .iter()
        .filter(|s| s.name.starts_with("uds_serve_simulate_wall_ns"))
        .map(|s| {
            let tag = match s.labels.first() {
                Some((k, v)) => format!("{}:{k}={v}", s.name),
                None => s.name.clone(),
            };
            (tag, s.value.as_str())
        })
        .collect();
    assert_eq!(
        series.get("uds_serve_simulate_wall_ns:quantile=0").copied(),
        Some("800"),
        "quantile 0 is the running min"
    );
    assert_eq!(
        series.get("uds_serve_simulate_wall_ns:quantile=1").copied(),
        Some("2000"),
        "quantile 1 is the running max"
    );
    assert_eq!(
        series.get("uds_serve_simulate_wall_ns_sum").copied(),
        Some("4000")
    );
    assert_eq!(
        series.get("uds_serve_simulate_wall_ns_count").copied(),
        Some("3")
    );
}

#[test]
fn histograms_expose_monotone_buckets_ending_at_inf() {
    let text = render(&busy_telemetry().snapshot());
    let doc = parse_exposition(&text);
    assert_eq!(
        doc.kind.get("uds_serve_request_ms").map(String::as_str),
        Some("histogram")
    );
    let buckets: Vec<(&str, f64)> = doc
        .samples
        .iter()
        .filter(|s| s.name == "uds_serve_request_ms_bucket")
        .map(|s| {
            let le = s
                .labels
                .iter()
                .find(|(k, _)| k == "le")
                .map(|(_, v)| v.as_str())
                .expect("bucket has an le label");
            (le, s.value.parse::<f64>().unwrap())
        })
        .collect();
    assert_eq!(
        buckets,
        vec![("5", 1.0), ("50", 3.0), ("500", 3.0), ("+Inf", 4.0)],
        "cumulative counts over the declared bounds"
    );
    assert!(
        buckets.windows(2).all(|w| w[0].1 <= w[1].1),
        "bucket series must be monotone"
    );
    let count = doc
        .samples
        .iter()
        .find(|s| s.name == "uds_serve_request_ms_count")
        .expect("_count series");
    assert_eq!(count.value, "4", "+Inf bucket equals _count");
    let sum = doc
        .samples
        .iter()
        .find(|s| s.name == "uds_serve_request_ms_sum")
        .expect("_sum series");
    assert_eq!(sum.value, "9062");
}

#[test]
fn no_duplicate_series_and_collisions_are_counted() {
    let text = render(&busy_telemetry().snapshot());
    let doc = parse_exposition(&text);
    let mut seen = std::collections::HashSet::new();
    for sample in &doc.samples {
        assert!(
            seen.insert(format!("{}{:?}", sample.name, sample.labels)),
            "duplicate series {}",
            sample.name
        );
    }
    // `guard.fallbacks` and `guard/fallbacks` collide; one survives and
    // the drop is observable.
    let fallbacks: Vec<&Sample> = doc
        .samples
        .iter()
        .filter(|s| s.name == "uds_guard_fallbacks")
        .collect();
    assert_eq!(fallbacks.len(), 1);
    let collisions = doc
        .samples
        .iter()
        .find(|s| s.name == "uds_prom_name_collisions")
        .expect("collision counter exported");
    assert_eq!(collisions.value, "1");
}

#[test]
fn rendering_is_deterministic() {
    let telemetry = busy_telemetry();
    let report = telemetry.snapshot();
    assert_eq!(render(&report), render(&report));
    // A fresh registry with the same recordings renders identically.
    assert_eq!(render(&report), render(&busy_telemetry().snapshot()));
}
