//! Library-level integration of the telemetry registry with the
//! engines and the guarded execution layer: compile phases and paper
//! metrics land in one registry, degradations are counted, and the
//! JSON report is deterministic modulo wall-clock.

use uds_core::telemetry::json::Json;
use uds_core::telemetry::TIMING_KEYS;
use uds_core::{build_engine_with_limits_probed, Engine, GuardedSimulator, Telemetry};
use uds_netlist::generators::iscas::c17;
use uds_netlist::{GateKind, NetlistBuilder, ResourceLimits};

/// A chain of `n` buffers: depth n, trivially correct, deep enough to
/// defeat small word budgets.
fn buffer_chain(n: usize) -> uds_netlist::Netlist {
    let mut b = NetlistBuilder::new();
    let mut prev = b.input("a");
    for i in 0..n {
        prev = b.gate(GateKind::Buf, &[prev], format!("b{i}")).unwrap();
    }
    b.output(prev);
    b.finish().unwrap()
}

#[test]
fn probed_build_records_compile_phases_and_gauges() {
    let nl = c17();
    let telemetry = Telemetry::new();
    {
        let _span = telemetry.span("compile");
        build_engine_with_limits_probed(
            &nl,
            Engine::ParallelPathTracingTrimming,
            &ResourceLimits::unlimited(),
            &telemetry,
        )
        .unwrap();
    }
    let report = telemetry.snapshot();
    let compile = report.find_span("compile").expect("compile span recorded");
    let children: Vec<&str> = compile.children.iter().map(|c| c.name.as_str()).collect();
    assert!(
        children.contains(&"parallel.codegen"),
        "compiler phases nest under the caller's span: {children:?}"
    );
    assert!(report.gauges.contains_key("parallel.pt-trim.word_ops"));
    assert!(report
        .gauges
        .contains_key("parallel.pt-trim.shifts_eliminated"));
}

#[test]
fn guarded_degradation_is_counted() {
    // A one-word budget rejects the unoptimized parallel engine on a
    // 40-deep chain; pc-set takes over and the registry must show both
    // the fallback and its budget classification.
    let nl = buffer_chain(40);
    let limits = ResourceLimits {
        max_field_words: Some(1),
        ..ResourceLimits::unlimited()
    };
    let telemetry = Telemetry::new();
    let chain = [Engine::Parallel, Engine::PcSet, Engine::EventDriven];
    let mut guarded =
        GuardedSimulator::with_chain_telemetry(&nl, limits, &chain, telemetry.clone()).unwrap();
    assert_eq!(guarded.active_engine(), Engine::PcSet);
    assert_eq!(telemetry.counter("guard.fallbacks"), 1);
    assert_eq!(telemetry.counter("guard.budget_trips"), 1);
    // The survivor's compile metrics made it into the same registry.
    assert!(telemetry.gauge_value("pcset.variables").is_some());
    guarded.simulate_vector(&[true]).unwrap();
    guarded.crosscheck_baseline().unwrap();
    assert_eq!(telemetry.counter("guard.crosscheck_mismatches"), 0);
}

#[test]
fn event_driven_engine_reports_run_counters() {
    let nl = c17();
    let mut sim = build_engine_with_limits_probed(
        &nl,
        Engine::EventDriven,
        &ResourceLimits::unlimited(),
        &Telemetry::new(),
    )
    .unwrap();
    assert_eq!(
        sim.run_counters(),
        vec![
            ("eventsim.events", 0),
            ("eventsim.toggles", 0),
            ("eventsim.gate_evaluations", 0)
        ]
    );
    for pattern in 0u32..8 {
        let inputs: Vec<bool> = (0..5).map(|i| pattern >> i & 1 != 0).collect();
        sim.simulate_vector(&inputs);
    }
    let counters = sim.run_counters();
    let counter = |name: &str| counters.iter().find(|(n, _)| *n == name).unwrap().1;
    let events = counter("eventsim.events");
    let toggles = counter("eventsim.toggles");
    let evals = counter("eventsim.gate_evaluations");
    assert!(events > 0, "8 varied vectors must produce events");
    assert!(evals > 0, "events on gate inputs must trigger evaluations");
    assert!(toggles > 0, "varied vectors must toggle nets");
    assert!(
        toggles <= events,
        "toggles are the committed events at time >= 1"
    );
}

#[test]
fn counters_saturate_instead_of_wrapping() {
    let telemetry = Telemetry::new();
    telemetry.add("overflow.prone", u64::MAX - 1);
    telemetry.add("overflow.prone", 5);
    assert_eq!(
        telemetry.counter("overflow.prone"),
        u64::MAX,
        "a counter at the ceiling must pin there, not wrap to 3"
    );
    telemetry.add("overflow.prone", 1);
    assert_eq!(telemetry.counter("overflow.prone"), u64::MAX);
}

#[test]
fn gauge_reregistration_under_a_new_value_is_surfaced() {
    use uds_core::telemetry::GAUGE_CONFLICTS;

    let telemetry = Telemetry::new();
    telemetry.set_gauge("parallel.word_ops", 100);
    // Re-registering the same value is idempotent, not a conflict.
    telemetry.set_gauge("parallel.word_ops", 100);
    assert_eq!(telemetry.counter(GAUGE_CONFLICTS), 0);
    // A different value wins (last write), but the disagreement is
    // counted so a report with conflicting producers is detectable.
    telemetry.set_gauge("parallel.word_ops", 200);
    assert_eq!(telemetry.gauge_value("parallel.word_ops"), Some(200));
    assert_eq!(telemetry.counter(GAUGE_CONFLICTS), 1);
    telemetry.set_gauge("parallel.word_ops", 300);
    assert_eq!(telemetry.counter(GAUGE_CONFLICTS), 2);
    // The warning counter itself appears in the snapshot.
    let report = telemetry.snapshot();
    assert_eq!(report.counters.get(GAUGE_CONFLICTS), Some(&2));
}

#[test]
fn compiled_engines_have_no_run_counters() {
    let nl = c17();
    for engine in [Engine::PcSet, Engine::ParallelPathTracingTrimming] {
        let mut sim = build_engine_with_limits_probed(
            &nl,
            engine,
            &ResourceLimits::unlimited(),
            &Telemetry::new(),
        )
        .unwrap();
        sim.simulate_vector(&[true; 5]);
        assert!(
            sim.run_counters().is_empty(),
            "{engine:?}: compiled loops do no bookkeeping"
        );
    }
}

#[test]
fn report_is_deterministic_modulo_wall_clock() {
    let build = || {
        let nl = c17();
        let telemetry = Telemetry::new();
        let mut sim = {
            let _span = telemetry.span("compile");
            build_engine_with_limits_probed(
                &nl,
                Engine::PcSet,
                &ResourceLimits::unlimited(),
                &telemetry,
            )
            .unwrap()
        };
        {
            let _span = telemetry.span("simulate");
            for pattern in 0u32..16 {
                let inputs: Vec<bool> = (0..5).map(|i| pattern >> i & 1 != 0).collect();
                sim.simulate_vector(&inputs);
                telemetry.add("run.vectors", 1);
            }
        }
        telemetry.snapshot().render_json()
    };
    let (a, b) = (build(), build());
    assert_ne!(a, b, "wall-clock fields should differ between runs");
    let strip = |s: &str| Json::parse(s).unwrap().without_keys(TIMING_KEYS).render();
    assert_eq!(strip(&a), strip(&b));
}
