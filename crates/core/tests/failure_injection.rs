//! Failure injection: malformed circuits and misuse must produce typed
//! errors (or documented panics), never silent corruption.

use uds_core::{build_simulator, Engine};
use uds_netlist::{bench_format, levelize, validate, GateKind, NetlistBuilder};

fn cyclic() -> uds_netlist::Netlist {
    let mut b = NetlistBuilder::named("cyclic");
    let a = b.input("a");
    let x = b.fresh_net();
    let y = b.fresh_net();
    b.gate_onto(GateKind::And, &[a, y], x).unwrap();
    b.gate_onto(GateKind::Not, &[x], y).unwrap();
    b.output(y);
    b.finish().unwrap()
}

fn sequential() -> uds_netlist::Netlist {
    let mut b = NetlistBuilder::named("seq");
    let d = b.input("d");
    let q = b.gate(GateKind::Dff, &[d], "q").unwrap();
    b.output(q);
    b.finish().unwrap()
}

#[test]
fn every_engine_rejects_cycles_and_flip_flops() {
    for nl in [cyclic(), sequential()] {
        for engine in Engine::ALL {
            let result = build_simulator(&nl, engine);
            let err = result
                .err()
                .unwrap_or_else(|| panic!("{engine} accepted the {} netlist", nl.name()));
            let text = err.to_string();
            assert!(
                text.contains("cycle") || text.contains("sequential"),
                "{engine}: unhelpful error `{text}`"
            );
        }
    }
}

#[test]
fn levelize_error_survives_error_chain() {
    let err = levelize(&cyclic()).unwrap_err();
    let boxed: Box<dyn std::error::Error> = Box::new(err);
    assert!(boxed.to_string().contains("cycle"));
}

#[test]
fn validation_reports_every_issue_at_once() {
    let mut b = NetlistBuilder::new();
    let a = b.input("a");
    let ghost = b.fresh_net(); // undriven, read below
    let dead = b.gate(GateKind::Not, &[a], "dead").unwrap(); // dangling
    let y = b.gate(GateKind::And, &[a, ghost], "y").unwrap();
    b.output(y);
    let _ = dead;
    let nl = b.finish().unwrap();
    let err = validate::check(&nl, validate::Mode::Combinational).unwrap_err();
    assert!(err.issues.len() >= 2, "{err}");
}

#[test]
fn bench_parser_survives_garbage() {
    for garbage in [
        "",
        "\n\n\n",
        "###",
        "()",
        "= AND(a, b)",
        "y = (a, b)",
        "y = AND",
        "INPUT(a) OUTPUT(b)",
        "y = AND(a,)",
        &"x".repeat(10_000),
        "y = AND(a, b)\u{0}",
        "\u{FEFF}INPUT(a)",
    ] {
        // Must never panic; error or empty netlist are both acceptable.
        let _ = bench_format::parse(garbage, "garbage");
    }
}

#[test]
fn wrong_vector_length_panics_with_message() {
    let nl = uds_netlist::generators::iscas::c17();
    for engine in Engine::ALL {
        let mut sim = build_simulator(&nl, engine).unwrap();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            sim.simulate_vector(&[true]); // c17 has 5 inputs
        }));
        let payload = result.expect_err("short vector must not be accepted");
        let message = payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default();
        assert!(
            message.contains("input vector length"),
            "{engine}: panic message `{message}`"
        );
    }
}

#[test]
fn empty_circuit_simulates() {
    // Zero gates, zero inputs: every engine should handle the degenerate
    // case without panicking.
    let mut b = NetlistBuilder::named("empty");
    let a = b.input("a");
    b.output(a);
    let nl = b.finish().unwrap();
    for engine in Engine::ALL {
        let mut sim = build_simulator(&nl, engine).unwrap();
        sim.simulate_vector(&[true]);
        assert!(sim.final_value(a), "{engine}");
        sim.simulate_vector(&[false]);
        assert!(!sim.final_value(a), "{engine}");
    }
}

#[test]
fn single_gate_depth_one_circuit() {
    let mut b = NetlistBuilder::named("one");
    let a = b.input("a");
    let y = b.gate(GateKind::Not, &[a], "y").unwrap();
    b.output(y);
    let nl = b.finish().unwrap();
    for engine in Engine::ALL {
        let mut sim = build_simulator(&nl, engine).unwrap();
        sim.simulate_vector(&[false]);
        assert!(sim.final_value(y), "{engine}");
        assert_eq!(sim.depth(), 1, "{engine}");
        if let Some(history) = sim.history(y) {
            assert_eq!(history.len(), 2, "{engine}");
        }
    }
}

#[test]
fn wide_fanin_gates_work_everywhere() {
    // A 12-input NAND exercises the >scratch-array path in the
    // interpreted engines and n-ary operand pools in the compiled ones.
    let mut b = NetlistBuilder::named("wide");
    let inputs: Vec<_> = (0..12).map(|i| b.input(format!("i{i}"))).collect();
    let y = b.gate(GateKind::Nand, &inputs, "y").unwrap();
    b.output(y);
    let nl = b.finish().unwrap();
    for engine in Engine::ALL {
        let mut sim = build_simulator(&nl, engine).unwrap();
        sim.simulate_vector(&[true; 12]);
        assert!(!sim.final_value(y), "{engine}: all-ones NAND");
        let mut vector = vec![true; 12];
        vector[7] = false;
        sim.simulate_vector(&vector);
        assert!(sim.final_value(y), "{engine}: one-zero NAND");
    }
}
