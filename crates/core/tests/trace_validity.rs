//! S4: the exported Chrome trace is valid — structurally, numerically,
//! and through the hand-rolled JSON reader.
//!
//! Perfetto and `chrome://tracing` silently drop malformed events, so
//! these checks are the difference between "a file was written" and "a
//! timeline renders": every span name survives escaping, `ts`/`dur`
//! are non-negative microseconds, per-thread timelines are monotone in
//! depth-first order, and the whole document round-trips through
//! [`Json::parse`].

use uds_core::telemetry::json::Json;
use uds_core::{chrome_trace, render_chrome_trace, SpanNode, Telemetry};

/// A registry exercising the paths that can break a trace: nested main
///-stack spans, attached worker spans on distinct threads, and names
/// that need escaping.
fn busy_telemetry() -> Telemetry {
    let telemetry = Telemetry::new();
    telemetry.label("command", "simulate \"quoted\"\ttab");
    {
        let _outer = telemetry.span("simulate");
        {
            let _compile = telemetry.span("compile \"c17.bench\"");
            let _nested = telemetry.span("parallel.codegen");
        }
        let _run = telemetry.span("run\nwith\nnewlines");
    }
    for shard in 0..3u64 {
        telemetry.attach_span(SpanNode {
            name: format!("batch.shard.{shard}"),
            start_ns: 1_000 + shard * 10,
            wall_ns: 2_500,
            tid: shard + 1,
            children: vec![SpanNode {
                name: format!("seed\\{shard}\u{1}ctrl"),
                start_ns: 1_200 + shard * 10,
                wall_ns: 100,
                tid: 0,
                children: Vec::new(),
            }],
        });
    }
    telemetry
}

fn events(doc: &Json) -> &[Json] {
    doc.get("traceEvents")
        .expect("traceEvents key")
        .as_arr()
        .expect("traceEvents is an array")
}

#[test]
fn rendered_trace_parses_and_round_trips() {
    let rendered = render_chrome_trace(&busy_telemetry().snapshot());
    assert!(rendered.ends_with('\n'));
    let parsed = Json::parse(rendered.trim_end()).expect("exported trace must parse");
    // Render → parse → render is a fixpoint: escaping is consistent.
    assert_eq!(parsed.render(), rendered.trim_end());
    assert_eq!(
        parsed.get("displayTimeUnit").and_then(Json::as_str),
        Some("ms")
    );
}

#[test]
fn special_characters_in_span_names_survive_escaping() {
    let report = busy_telemetry().snapshot();
    let doc = Json::parse(&render_chrome_trace(&report)).expect("parses");
    let names: Vec<&str> = events(&doc)
        .iter()
        .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
        .filter_map(|e| e.get("name").and_then(Json::as_str))
        .collect();
    // Quotes, newlines, backslashes, and raw control characters all
    // come back byte-identical after a render/parse round trip.
    assert!(names.contains(&"compile \"c17.bench\""), "{names:?}");
    assert!(names.contains(&"run\nwith\nnewlines"), "{names:?}");
    assert!(names.contains(&"seed\\0\u{1}ctrl"), "{names:?}");
    let process = events(&doc)
        .iter()
        .find(|e| e.get("name").and_then(Json::as_str) == Some("process_name"))
        .and_then(|e| e.get("args")?.get("name")?.as_str());
    assert_eq!(process, Some("simulate \"quoted\"\ttab"));
}

#[test]
fn timestamps_are_non_negative_and_monotone_per_thread() {
    let doc = chrome_trace(&busy_telemetry().snapshot());
    let mut last_ts_by_tid: Vec<(u64, f64)> = Vec::new();
    let mut complete_events = 0;
    for event in events(&doc) {
        let ph = event.get("ph").and_then(Json::as_str).expect("ph");
        assert!(matches!(ph, "X" | "M"), "only complete/metadata events");
        assert_eq!(event.get("pid").and_then(Json::as_u64), Some(1));
        let tid = event.get("tid").and_then(Json::as_u64).expect("tid");
        if ph != "X" {
            continue;
        }
        complete_events += 1;
        let ts = event.get("ts").and_then(Json::as_f64).expect("ts");
        let dur = event.get("dur").and_then(Json::as_f64).expect("dur");
        assert!(ts >= 0.0 && ts.is_finite(), "ts {ts}");
        assert!(dur >= 0.0 && dur.is_finite(), "dur {dur}");
        match last_ts_by_tid.iter_mut().find(|(t, _)| *t == tid) {
            Some((_, last)) => {
                assert!(
                    ts >= *last,
                    "tid {tid}: event at ts {ts} emitted after ts {last} — \
                     depth-first order must be start-time order per thread"
                );
                *last = ts;
            }
            None => last_ts_by_tid.push((tid, ts)),
        }
    }
    // 4 main-stack spans + 3 shards × (span + child).
    assert_eq!(complete_events, 10);
    // Threads 0 (main) and 1..=3 (shards) all appeared.
    let mut tids: Vec<u64> = last_ts_by_tid.iter().map(|(t, _)| *t).collect();
    tids.sort_unstable();
    assert_eq!(tids, vec![0, 1, 2, 3]);
}

#[test]
fn empty_report_is_still_a_valid_trace() {
    let report = Telemetry::new().snapshot();
    let doc = Json::parse(&render_chrome_trace(&report)).expect("parses");
    // Just the process_name metadata event; loaders accept it.
    assert_eq!(events(&doc).len(), 1);
}
