//! Exactness contract of the batch runner: sharded execution must be
//! byte-identical to sequential for every engine, shard count, and
//! word width — including while chaos faults knock engines over
//! mid-shard. Seeded and dependency-free (stimulus comes from
//! [`RandomVectors`]).

use uds_core::chaos::{ChaosFactory, Fault, FaultPlan};
use uds_core::vectors::RandomVectors;
use uds_core::{run_batch, DefaultEngineFactory, Engine, GuardedSimulator, Telemetry, WordWidth};
use uds_netlist::generators::random::{layered, LayeredConfig};
use uds_netlist::{Netlist, ResourceLimits};

/// A circuit deep enough that 32-bit parallel fields span two words and
/// retention (each vector starting from the last one's settled state)
/// actually matters.
fn circuit() -> Netlist {
    let mut config = LayeredConfig::new("batch-prop", 220, 40);
    config.primary_inputs = 8;
    config.seed = 0xBA7C;
    config.locality = 0.4;
    config.xor_fraction = 0.25;
    layered(&config).unwrap()
}

fn stimulus(nl: &Netlist, vectors: usize) -> Vec<Vec<bool>> {
    RandomVectors::new(nl.primary_inputs().len(), 0x5EED_1990)
        .take(vectors)
        .collect()
}

/// Primary-output rows from a plain sequential run of `chain`.
fn sequential_rows(
    nl: &Netlist,
    chain: &[Engine],
    word: WordWidth,
    vectors: &[Vec<bool>],
) -> Vec<Vec<bool>> {
    let factory = Box::new(DefaultEngineFactory::with_word(word));
    let mut guard =
        GuardedSimulator::with_factory(nl, ResourceLimits::production(), chain, factory).unwrap();
    vectors
        .iter()
        .map(|v| {
            guard.simulate_vector(v).unwrap();
            nl.primary_outputs()
                .iter()
                .map(|&po| guard.final_value(po))
                .collect()
        })
        .collect()
}

#[test]
fn batch_is_byte_identical_for_every_engine_job_count_and_width() {
    let nl = circuit();
    let vectors = stimulus(&nl, 40);
    for engine in [
        Engine::ParallelPathTracingTrimming,
        Engine::Parallel,
        Engine::PcSet,
        Engine::EventDriven,
    ] {
        let chain = [engine];
        for word in [WordWidth::W32, WordWidth::W64] {
            let expected = sequential_rows(&nl, &chain, word, &vectors);
            for jobs in [1usize, 2, 7] {
                let factory = Box::new(DefaultEngineFactory::with_word(word));
                let prototype = GuardedSimulator::with_factory(
                    &nl,
                    ResourceLimits::production(),
                    &chain,
                    factory,
                )
                .unwrap();
                let out = run_batch(&nl, &prototype, &vectors, jobs, None).unwrap();
                assert_eq!(
                    out.rows, expected,
                    "{engine} diverged at word={word} jobs={jobs}"
                );
                assert_eq!(out.shards.len(), jobs.min(vectors.len()));
            }
        }
    }
}

#[test]
fn batch_stays_exact_while_chaos_panics_an_engine_in_every_shard() {
    let nl = circuit();
    let vectors = stimulus(&nl, 30);
    // The expected answers come from an unsabotaged sequential run.
    let expected = sequential_rows(
        &nl,
        &GuardedSimulator::DEFAULT_CHAIN,
        WordWidth::W32,
        &vectors,
    );
    // The lead engine panics at its third vector — in *each* shard,
    // since fault coordinates are engine-local. Every worker must
    // degrade independently and still produce the exact rows.
    let plan = FaultPlan::single(
        "panic-mid-shard",
        Fault::RunPanicAt {
            engine: Engine::ParallelPathTracingTrimming,
            vector: 2,
        },
    );
    for jobs in [1usize, 2, 7] {
        let telemetry = Telemetry::new();
        let prototype = GuardedSimulator::with_factory_telemetry(
            &nl,
            ResourceLimits::production(),
            &GuardedSimulator::DEFAULT_CHAIN,
            Box::new(ChaosFactory::new(plan.clone())),
            telemetry.clone(),
        )
        .unwrap();
        let out = run_batch(&nl, &prototype, &vectors, jobs, Some(&telemetry)).unwrap();
        assert_eq!(out.rows, expected, "jobs={jobs}");
        for shard in &out.shards {
            assert!(
                shard.fallbacks > 0,
                "jobs={jobs}: shard {} never hit its injected panic",
                shard.index
            );
            assert_ne!(
                shard.engine,
                Engine::ParallelPathTracingTrimming,
                "jobs={jobs}"
            );
        }
        assert_eq!(
            telemetry.counter("batch.shard_fallbacks"),
            out.shards.iter().map(|s| s.fallbacks as u64).sum::<u64>()
        );
    }
}

#[test]
fn forked_guards_inherit_the_prototype_seed() {
    // Seeding the prototype then batching a *suffix* of the stream must
    // equal the corresponding suffix of the sequential run — the fork
    // carries the seed into shard 0, the prepass covers the rest.
    let nl = circuit();
    let vectors = stimulus(&nl, 20);
    let expected = sequential_rows(
        &nl,
        &GuardedSimulator::DEFAULT_CHAIN,
        WordWidth::W32,
        &vectors,
    );
    let settled = uds_eventsim::zero_delay::stable_states(&nl, [vectors[9].as_slice()])
        .unwrap()
        .remove(0);
    let factory = Box::new(DefaultEngineFactory::default());
    let mut prototype = GuardedSimulator::with_factory(
        &nl,
        ResourceLimits::production(),
        &GuardedSimulator::DEFAULT_CHAIN,
        factory,
    )
    .unwrap();
    prototype.seed_stable(&settled);
    let out = run_batch(&nl, &prototype, &vectors[10..], 3, None).unwrap();
    assert_eq!(out.rows.as_slice(), &expected[10..]);
}
