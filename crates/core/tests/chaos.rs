//! The chaos suite: for every fault plan in the matrix, against every
//! engine, the outcome is either a typed [`SimError`] or a fallback
//! result that bit-exactly matches the event-driven baseline under
//! [`uds_core::crosscheck`] — never a silent divergence.
//!
//! The faults are injected deterministically through a
//! [`ChaosFactory`]; the guarded layer must contain each one.

use uds_core::chaos::{truncate_bench, ChaosFactory, Fault, FaultPlan};
use uds_core::{Engine, FailureClass, GuardedSimulator, SimError, SimErrorKind};
use uds_netlist::bench_format;
use uds_netlist::generators::iscas::c17;
use uds_netlist::ResourceLimits;

const VECTORS: usize = 24;

/// Deterministic 5-bit stimulus (c17 has 5 primary inputs).
fn stimulus() -> Vec<Vec<bool>> {
    (0..VECTORS as u32)
        .map(|k| {
            let pattern = k.wrapping_mul(0x9E37_79B9) >> 11;
            (0..5).map(|i| pattern >> i & 1 != 0).collect()
        })
        .collect()
}

/// The chain that actually exposes `engine` to the fault, with the
/// baseline as backstop (except when the baseline itself is the
/// target).
fn chain_for(engine: Engine) -> Vec<Engine> {
    if engine == Engine::EventDriven {
        vec![Engine::EventDriven]
    } else {
        vec![engine, Engine::EventDriven]
    }
}

/// What a plan's execution amounted to.
#[derive(Debug)]
enum Outcome {
    /// A typed error surfaced (at build, run, or cross-check).
    Typed(SimError),
    /// Every vector ran and the survivor matched the baseline
    /// bit-exactly; the payload is how many fallbacks fired.
    Verified { fallbacks: usize },
}

/// Runs one plan against one engine chain and classifies the outcome.
/// This *is* the invariant: any path that neither errors in a typed way
/// nor survives cross-checking panics the test.
fn run_plan(plan: &FaultPlan, chain: &[Engine]) -> Outcome {
    let nl = c17();
    let factory = Box::new(ChaosFactory::new(plan.clone()));
    let mut guarded =
        match GuardedSimulator::with_factory(&nl, ResourceLimits::production(), chain, factory) {
            Ok(guarded) => guarded,
            Err(err) => return Outcome::Typed(err),
        };
    let mut stim = stimulus();
    plan.poison_stimulus(&mut stim);
    for vector in &stim {
        if let Err(err) = guarded.simulate_vector(vector) {
            return Outcome::Typed(err);
        }
    }
    assert_eq!(guarded.vectors_run(), VECTORS);
    match guarded.crosscheck_baseline() {
        Ok(()) => Outcome::Verified {
            fallbacks: guarded.fallbacks().len(),
        },
        Err(err) => Outcome::Typed(err),
    }
}

#[test]
fn compile_phase_panic_degrades_or_errors_for_every_engine() {
    for engine in Engine::ALL {
        let plan = FaultPlan::single(
            format!("compile-panic:{engine}"),
            Fault::CompilePhasePanic {
                engine,
                phase: "codegen",
            },
        );
        match run_plan(&plan, &chain_for(engine)) {
            Outcome::Verified { fallbacks } => {
                assert_ne!(engine, Engine::EventDriven);
                assert_eq!(fallbacks, 1, "{engine}: the sabotaged build must fire");
            }
            Outcome::Typed(err) => {
                assert_eq!(engine, Engine::EventDriven, "only the backstop may die");
                assert_eq!(err.class(), FailureClass::Panic, "{err}");
                assert!(err.to_string().contains("codegen"), "{err}");
            }
        }
    }
}

#[test]
fn compile_budget_trip_degrades_or_errors_for_every_engine() {
    for engine in Engine::ALL {
        let plan = FaultPlan::single(
            format!("compile-budget:{engine}"),
            Fault::CompileBudget { engine },
        );
        match run_plan(&plan, &chain_for(engine)) {
            Outcome::Verified { fallbacks } => {
                assert_ne!(engine, Engine::EventDriven);
                assert_eq!(fallbacks, 1, "{engine}");
            }
            Outcome::Typed(err) => {
                assert_eq!(engine, Engine::EventDriven);
                assert_eq!(err.class(), FailureClass::Budget, "{err}");
            }
        }
    }
}

#[test]
fn run_panic_mid_batch_degrades_or_errors_for_every_engine() {
    for engine in Engine::ALL {
        let plan = FaultPlan::single(
            format!("run-panic:{engine}"),
            Fault::RunPanicAt { engine, vector: 3 },
        );
        match run_plan(&plan, &chain_for(engine)) {
            Outcome::Verified { fallbacks } => {
                assert_ne!(engine, Engine::EventDriven);
                assert_eq!(
                    fallbacks, 1,
                    "{engine}: the mid-run panic must fire a fallback"
                );
            }
            Outcome::Typed(err) => {
                assert_eq!(engine, Engine::EventDriven);
                assert_eq!(err.class(), FailureClass::Panic, "{err}");
                match &err.kind {
                    SimErrorKind::ChainExhausted(errors) => assert!(!errors.is_empty()),
                    other => panic!("expected chain exhaustion, got {other:?}"),
                }
            }
        }
    }
}

#[test]
fn silent_corruption_is_always_caught_by_crosscheck() {
    // The deadliest fault: the engine lies without failing. No fallback
    // fires — the *only* line of defense is the baseline cross-check,
    // and it must convict every engine.
    for engine in Engine::ALL {
        let plan = FaultPlan::single(
            format!("corrupt:{engine}"),
            Fault::SilentCorruptionFrom { engine, vector: 2 },
        );
        match run_plan(&plan, &chain_for(engine)) {
            Outcome::Typed(err) => {
                assert_eq!(err.class(), FailureClass::Mismatch, "{engine}: {err}");
            }
            Outcome::Verified { .. } => {
                panic!("{engine}: corrupted outputs passed cross-check — silent wrongness")
            }
        }
    }
}

#[test]
fn poisoned_stimulus_still_verifies_bit_exactly() {
    // A flipped input bit reaches every engine identically, so the
    // guarded result must still match the baseline fed the same poison.
    for engine in Engine::ALL {
        let plan = FaultPlan::single(
            format!("poison:{engine}"),
            Fault::PoisonInput { vector: 1, bit: 0 },
        );
        match run_plan(&plan, &chain_for(engine)) {
            Outcome::Verified { fallbacks } => assert_eq!(fallbacks, 0, "{engine}"),
            Outcome::Typed(err) => panic!("{engine}: poisoned input must not error: {err}"),
        }
    }
}

#[test]
fn combined_faults_compose_without_silent_divergence() {
    // Budget-reject the first engine, panic the second mid-run, poison
    // the stimulus: the survivor (pc-set) must still verify.
    let plan = FaultPlan {
        name: "combined".into(),
        faults: vec![
            Fault::CompileBudget {
                engine: Engine::ParallelPathTracingTrimming,
            },
            Fault::RunPanicAt {
                engine: Engine::Parallel,
                vector: 5,
            },
            Fault::PoisonInput { vector: 0, bit: 3 },
        ],
    };
    match run_plan(&plan, &GuardedSimulator::DEFAULT_CHAIN) {
        Outcome::Verified { fallbacks } => assert_eq!(fallbacks, 2),
        Outcome::Typed(err) => panic!("survivor must verify: {err}"),
    }
}

#[test]
fn truncated_bench_input_never_panics_the_parser() {
    let text = bench_format::write(&c17());
    for keep in 0..text.len() {
        let cut = truncate_bench(&text, keep);
        match bench_format::parse(cut, "c17-truncated") {
            // A truncation landing on a statement boundary can still be
            // a well-formed (smaller) circuit; that is success, and it
            // must then simulate under guard without issue.
            Ok(nl) => {
                let limits = ResourceLimits::production();
                let width = nl.primary_inputs().len();
                let mut guarded = GuardedSimulator::new(&nl, limits).unwrap();
                guarded.simulate_vector(&vec![true; width]).unwrap();
                guarded.crosscheck_baseline().unwrap();
            }
            // Otherwise: a typed, spanned error — never a panic.
            Err(err) => {
                let _ = err.to_string();
            }
        }
    }
}
