//! Adversarial `.bench` corpus: the parser must be total — every input
//! here either parses or returns a spanned [`ParseError`]; none may
//! panic. The cases are the classic ways a netlist file goes wrong in
//! the wild: cut off mid-write, duplicated definitions, degenerate
//! gates, absurd fan-ins, and text that was never a netlist at all.

use uds_netlist::bench_format::{self, ParseError, ParseErrorKind};
use uds_netlist::{BuildError, GateKind};

/// Parses and demands a typed error, returning it for inspection.
fn must_fail(text: &str) -> ParseError {
    match bench_format::parse(text, "adversarial") {
        Ok(nl) => panic!(
            "expected a parse error, got a netlist with {} gates",
            nl.gate_count()
        ),
        Err(err) => {
            // The rendering itself must also never panic.
            let _ = err.to_string();
            err
        }
    }
}

/// Parses and tolerates either outcome — the invariant under test is
/// only "no panic, and errors render".
fn must_not_panic(text: &str) {
    if let Err(err) = bench_format::parse(text, "adversarial") {
        let _ = err.to_string();
    }
}

#[test]
fn every_truncation_of_a_real_circuit_is_handled() {
    let text = bench_format::C17;
    for end in 0..=text.len() {
        if !text.is_char_boundary(end) {
            continue;
        }
        must_not_panic(&text[..end]);
    }
}

#[test]
fn truncation_mid_token_gives_a_spanned_error() {
    // Cut inside the gate call: `y = NAN` is a syntax error on line 4,
    // not a crash and not a silent accept.
    let text = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NAN";
    let err = must_fail(text);
    assert_eq!(err.line, 4);
    assert!(matches!(err.kind, ParseErrorKind::Syntax { .. }));
}

#[test]
fn duplicate_driver_definitions_are_rejected_with_the_second_line() {
    let text = "INPUT(a)\ny = NOT(a)\ny = BUF(a)\nOUTPUT(y)\n";
    let err = must_fail(text);
    assert_eq!(err.line, 3);
    assert!(matches!(
        err.kind,
        ParseErrorKind::Build(BuildError::MultipleDrivers { .. })
    ));
}

#[test]
fn duplicate_input_declarations_are_idempotent() {
    let text = "INPUT(a)\nINPUT(a)\nINPUT(a)\nOUTPUT(y)\ny = BUF(a)\n";
    let nl = bench_format::parse(text, "dup-input").unwrap();
    assert_eq!(nl.primary_inputs().len(), 1);
}

#[test]
fn zero_input_gate_is_a_typed_arity_error() {
    let err = must_fail("OUTPUT(y)\ny = AND()\n");
    assert_eq!(err.line, 2);
    assert!(matches!(
        err.kind,
        ParseErrorKind::Build(BuildError::BadArity {
            kind: GateKind::And,
            got: 0,
        })
    ));
}

#[test]
fn ten_thousand_fan_in_gate_parses() {
    // Monstrous but legal: AND is n-ary. The parser must neither choke
    // nor quote ten thousand names back in any error.
    let mut text = String::new();
    let mut args = Vec::new();
    for i in 0..10_000 {
        text.push_str(&format!("INPUT(n{i})\n"));
        args.push(format!("n{i}"));
    }
    text.push_str(&format!("y = AND({})\nOUTPUT(y)\n", args.join(", ")));
    let nl = bench_format::parse(&text, "wide").unwrap();
    assert_eq!(nl.gate_count(), 1);
    assert_eq!(nl.primary_inputs().len(), 10_000);
}

#[test]
fn ten_thousand_fan_in_garbage_excerpts_its_error() {
    // Same width, but the keyword is junk: the error message must stay
    // one short line, not echo the whole argument list.
    let args = (0..10_000).map(|i| format!("n{i}")).collect::<Vec<_>>();
    let text = format!("y = ZORK({})\n", args.join(", "));
    let err = must_fail(&text);
    assert!(matches!(err.kind, ParseErrorKind::UnknownGateKind { .. }));
    assert!(err.to_string().len() < 200, "{}", err.to_string().len());
}

#[test]
fn unicode_garbage_never_panics() {
    // Everything valid-UTF-8-but-hostile: BOMs, bidi overrides, NULs,
    // combining marks, replacement characters, astral-plane names.
    let corpus: &[&str] = &[
        "\u{FEFF}INPUT(a)\nOUTPUT(a)\n",
        "INPUT(\u{202E}a\u{202C})\nOUTPUT(\u{202E}a\u{202C})\n",
        "IN\u{0}PUT(a)",
        "INPUT(é̂̃)\nOUTPUT(é̂̃)\n",
        "\u{FFFD}\u{FFFD}\u{FFFD}",
        "𝕪 = 𝔸ℕ𝔻(𝕒, 𝕓)",
        "INPUT(🦀)\nOUTPUT(🦀)\n",
        "é = ",
        "=",
        "()",
        "y = (",
        "y = )(",
        "INPUT((((",
        "OUTPUT\t(\ta\t)\t",
    ];
    for text in corpus {
        must_not_panic(text);
    }
}

#[test]
fn deterministic_fuzz_never_panics() {
    // A cheap xorshift fuzzer over a charset chosen to hit every parser
    // branch: structure characters, keywords-in-pieces, unicode,
    // newlines. Deterministic, so a failure reproduces.
    const CHARSET: &[char] = &[
        'I', 'N', 'P', 'U', 'T', 'O', 'A', 'D', '=', '(', ')', ',', '#', ' ', '\t', '\n', 'a', '0',
        'é', '🦀', '\u{202E}',
    ];
    let mut state: u64 = 0x2545F4914F6CDD1D;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for _ in 0..500 {
        let len = (next() % 120) as usize;
        let text: String = (0..len)
            .map(|_| CHARSET[(next() % CHARSET.len() as u64) as usize])
            .collect();
        must_not_panic(&text);
    }
}

#[test]
fn crlf_and_mixed_line_endings_parse() {
    let text = "INPUT(a)\r\nINPUT(b)\rOUTPUT(y)\r\ny = AND(a, b)\r\n";
    // `\r` alone is not a line terminator for `str::lines`; the lone-\r
    // line is garbage and must produce a typed error, while pure CRLF
    // must parse cleanly.
    must_not_panic(text);
    let clean = "INPUT(a)\r\nINPUT(b)\r\nOUTPUT(y)\r\ny = AND(a, b)\r\n";
    let nl = bench_format::parse(clean, "crlf").unwrap();
    assert_eq!(nl.gate_count(), 1);
}

#[test]
fn writer_output_always_reparses_after_any_char_truncation() {
    // Round-trip resilience: write a real netlist, truncate at every
    // character boundary, and demand the parser stays total.
    let text = bench_format::write(&uds_netlist::generators::iscas::c17());
    for end in (0..=text.len()).filter(|&e| text.is_char_boundary(e)) {
        must_not_panic(&text[..end]);
    }
}
