//! Property-based tests for the netlist substrate: levelization
//! invariants, generator guarantees, and format round-trips over
//! randomized circuits.

use proptest::prelude::*;

use uds_netlist::generators::random::{layered, LayeredConfig};
use uds_netlist::{bench_format, levelize, validate, GateKind, Netlist};

/// A proptest strategy producing random-but-valid layered configs.
fn config_strategy() -> impl Strategy<Value = LayeredConfig> {
    (
        1u32..=30,    // depth
        0usize..=200, // extra gates beyond depth
        1usize..=40,  // primary inputs
        0usize..=20,  // primary outputs (minimum)
        0.0f64..=1.0, // xor fraction
        0.0f64..=0.3, // inverter fraction
        0.0f64..=1.0, // locality
        2usize..=6,   // max fanin
        any::<u64>(), // seed
    )
        .prop_map(
            |(depth, extra, pis, pos, xor, inv, locality, fanin, seed)| LayeredConfig {
                name: "prop".to_owned(),
                primary_inputs: pis,
                primary_outputs: pos,
                gates: depth as usize + extra,
                depth,
                xor_fraction: xor,
                inverter_fraction: inv,
                locality,
                max_fanin: fanin,
                leak_window: usize::MAX,
                seed,
            },
        )
}

fn build(config: &LayeredConfig) -> Netlist {
    layered(config).expect("strategy emits valid configs")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn generator_hits_exact_gates_and_depth(config in config_strategy()) {
        let nl = build(&config);
        prop_assert_eq!(nl.gate_count(), config.gates);
        let levels = levelize(&nl).unwrap();
        prop_assert_eq!(levels.depth, config.depth);
    }

    #[test]
    fn generated_netlists_validate(config in config_strategy()) {
        let nl = build(&config);
        validate::check_lenient(&nl, validate::Mode::Combinational).unwrap();
    }

    #[test]
    fn minlevel_never_exceeds_level(config in config_strategy()) {
        let nl = build(&config);
        let levels = levelize(&nl).unwrap();
        for net in nl.net_ids() {
            prop_assert!(levels.net_minlevel[net] <= levels.net_level[net]);
        }
        for gid in nl.gate_ids() {
            prop_assert!(levels.gate_minlevel[gid.index()] <= levels.gate_level[gid.index()]);
        }
    }

    #[test]
    fn levels_are_longest_paths(config in config_strategy()) {
        // level(gate) = 1 + max(level(inputs)); checked independently of
        // the worklist by re-deriving over the topo order.
        let nl = build(&config);
        let levels = levelize(&nl).unwrap();
        for &gid in &levels.topo_gates {
            let gate = nl.gate(gid);
            let expected = gate
                .inputs
                .iter()
                .map(|&n| levels.net_level[n])
                .max()
                .map_or(0, |m| m + 1);
            prop_assert_eq!(levels.gate_level[gid.index()], expected);
            prop_assert_eq!(levels.net_level[gate.output], expected);
        }
    }

    #[test]
    fn topo_order_is_a_valid_schedule(config in config_strategy()) {
        let nl = build(&config);
        let levels = levelize(&nl).unwrap();
        let mut ready = vec![false; nl.net_count()];
        for net in nl.net_ids() {
            if nl.driver(net).is_none() {
                ready[net] = true;
            }
        }
        for &gid in &levels.topo_gates {
            for &input in &nl.gate(gid).inputs {
                prop_assert!(ready[input], "input {input} used before it is driven");
            }
            ready[nl.gate(gid).output] = true;
        }
        prop_assert_eq!(levels.topo_gates.len(), nl.gate_count());
    }

    #[test]
    fn bench_round_trip_preserves_structure(config in config_strategy()) {
        let nl = build(&config);
        let text = bench_format::write(&nl);
        let reparsed = bench_format::parse(&text, nl.name()).unwrap();
        prop_assert_eq!(nl.gate_count(), reparsed.gate_count());
        prop_assert_eq!(nl.net_count(), reparsed.net_count());
        prop_assert_eq!(nl.primary_inputs().len(), reparsed.primary_inputs().len());
        prop_assert_eq!(nl.primary_outputs().len(), reparsed.primary_outputs().len());
        for (a, b) in nl.gates().iter().zip(reparsed.gates()) {
            prop_assert_eq!(a.kind, b.kind);
            prop_assert_eq!(a.inputs.len(), b.inputs.len());
        }
        // Net names survive (ids may renumber; look up by name).
        for net in nl.net_ids() {
            prop_assert!(reparsed.find_net(nl.net_name(net)).is_some());
        }
    }

    #[test]
    fn cone_extraction_preserves_root_functions(
        config in config_strategy(),
        root_selector in any::<u32>(),
        pattern in any::<u64>(),
    ) {
        use uds_netlist::cone;
        let nl = build(&config);
        let outputs = nl.primary_outputs();
        prop_assume!(!outputs.is_empty());
        let root = outputs[root_selector as usize % outputs.len()];
        let cone = cone::extract(&nl, &[root]);
        let cone_root = cone.to_cone(root).expect("root is in its own cone");

        // Evaluate both with the same named input assignment.
        let assignment = |name: &str, nl: &Netlist| -> bool {
            let position = nl
                .primary_inputs()
                .iter()
                .position(|&pi| nl.net_name(pi) == name);
            position.is_some_and(|p| pattern >> (p % 64) & 1 != 0)
        };
        let full_inputs: std::collections::HashMap<&str, bool> = nl
            .primary_inputs()
            .iter()
            .map(|&pi| (nl.net_name(pi), assignment(nl.net_name(pi), &nl)))
            .collect();
        let cone_inputs: std::collections::HashMap<&str, bool> = cone
            .netlist
            .primary_inputs()
            .iter()
            .map(|&pi| {
                let name = cone.netlist.net_name(pi);
                (name, full_inputs[name])
            })
            .collect();

        let eval = |nl: &Netlist, inputs: &std::collections::HashMap<&str, bool>, net| {
            let levels = levelize(nl).unwrap();
            let mut value = vec![false; nl.net_count()];
            for &pi in nl.primary_inputs() {
                value[pi] = inputs[nl.net_name(pi)];
            }
            for &gid in &levels.topo_gates {
                let gate = nl.gate(gid);
                let bits: Vec<bool> = gate.inputs.iter().map(|&n| value[n]).collect();
                value[gate.output] = gate.kind.eval_bits(&bits);
            }
            value[net]
        };
        prop_assert_eq!(
            eval(&nl, &full_inputs, root),
            eval(&cone.netlist, &cone_inputs, cone_root)
        );
        prop_assert!(cone.netlist.gate_count() <= nl.gate_count());
    }

    #[test]
    fn word_and_bit_eval_agree(
        kind in prop::sample::select(vec![
            GateKind::And, GateKind::Nand, GateKind::Or, GateKind::Nor,
            GateKind::Xor, GateKind::Xnor,
        ]),
        inputs in prop::collection::vec(any::<bool>(), 2..=8),
    ) {
        let words: Vec<u64> = inputs.iter().map(|&b| if b { !0 } else { 0 }).collect();
        let from_words = kind.eval_words(&words) & 1 != 0;
        prop_assert_eq!(kind.eval_bits(&inputs), from_words);
    }

    #[test]
    fn gate_eval_word_parallelism(
        kind in prop::sample::select(vec![
            GateKind::And, GateKind::Nand, GateKind::Or, GateKind::Nor,
            GateKind::Xor, GateKind::Xnor,
        ]),
        a in any::<u64>(),
        b in any::<u64>(),
    ) {
        // Evaluating words is exactly 64 independent bit evaluations.
        let word = kind.eval_words(&[a, b]);
        for bit in 0..64 {
            let scalar = kind.eval_bits(&[a >> bit & 1 != 0, b >> bit & 1 != 0]);
            prop_assert_eq!(word >> bit & 1 != 0, scalar, "bit {}", bit);
        }
    }
}
