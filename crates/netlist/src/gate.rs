//! Gate kinds and their evaluation semantics.
//!
//! Two evaluation flavors are provided:
//!
//! * **bit-parallel two-valued** ([`GateKind::eval_words`]): operates on
//!   whole machine words, one circuit "sample" per bit. This is exactly the
//!   operation the parallel technique compiles to, and is also used (masked
//!   to one bit) by the other simulators.
//! * **scalar three-valued** ([`GateKind::eval_logic3`]): Kleene logic over
//!   `0 / 1 / X`, used by the interpreted three-valued event-driven
//!   baseline of the paper's Fig. 19.

use std::fmt;
use std::str::FromStr;

/// The kind of a logic gate.
///
/// All multi-input kinds (`And`, `Nand`, `Or`, `Nor`, `Xor`, `Xnor`) accept
/// two or more inputs. `Not` and `Buf` take exactly one input. `Const0` and
/// `Const1` take none and drive a constant signal (the paper treats constant
/// signals as level-0 sources, like primary inputs). `Dff` is a unit that
/// only appears in *sequential* netlists; the combinational techniques
/// require it to be cut away first (see [`crate::sequential`]).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum GateKind {
    /// Logical AND of all inputs.
    And,
    /// Complement of the AND of all inputs.
    Nand,
    /// Logical OR of all inputs.
    Or,
    /// Complement of the OR of all inputs.
    Nor,
    /// Exclusive OR (parity) of all inputs.
    Xor,
    /// Complement of the XOR of all inputs.
    Xnor,
    /// Complement of the single input.
    Not,
    /// The single input, unchanged (a buffer).
    Buf,
    /// Constant logic 0 (no inputs).
    Const0,
    /// Constant logic 1 (no inputs).
    Const1,
    /// D flip-flop (sequential only; output follows input one clock later).
    Dff,
}

impl GateKind {
    /// All gate kinds, in a fixed order (useful for exhaustive tests).
    pub const ALL: [GateKind; 11] = [
        GateKind::And,
        GateKind::Nand,
        GateKind::Or,
        GateKind::Nor,
        GateKind::Xor,
        GateKind::Xnor,
        GateKind::Not,
        GateKind::Buf,
        GateKind::Const0,
        GateKind::Const1,
        GateKind::Dff,
    ];

    /// Returns the valid input-count range `(min, max)` for this kind.
    /// `max` is `usize::MAX` for unbounded multi-input gates.
    pub fn arity(self) -> (usize, usize) {
        match self {
            GateKind::And
            | GateKind::Nand
            | GateKind::Or
            | GateKind::Nor
            | GateKind::Xor
            | GateKind::Xnor => (2, usize::MAX),
            GateKind::Not | GateKind::Buf | GateKind::Dff => (1, 1),
            GateKind::Const0 | GateKind::Const1 => (0, 0),
        }
    }

    /// Returns `true` if `n` inputs is a legal fan-in for this kind.
    pub fn accepts_inputs(self, n: usize) -> bool {
        let (lo, hi) = self.arity();
        n >= lo && n <= hi
    }

    /// Returns `true` for the kinds whose output is the complement of the
    /// underlying associative operation (`Nand`, `Nor`, `Xnor`, `Not`).
    pub fn is_inverting(self) -> bool {
        matches!(
            self,
            GateKind::Nand | GateKind::Nor | GateKind::Xnor | GateKind::Not
        )
    }

    /// Evaluates the gate bit-parallel over machine words.
    ///
    /// Each bit position of the inputs is an independent two-valued sample;
    /// the result carries the gate function applied position-wise. This is
    /// the primitive that compiled simulation lowers to.
    ///
    /// For inverting kinds all 64 bits of the result are complemented;
    /// callers that care about fewer bit positions must mask.
    ///
    /// # Panics
    ///
    /// Panics if the number of inputs is not legal for the kind (a netlist
    /// accepted by [`crate::validate`] never triggers this), or if called on
    /// [`GateKind::Dff`], which has no combinational function.
    pub fn eval_words(self, inputs: &[u64]) -> u64 {
        debug_assert!(
            self.accepts_inputs(inputs.len()),
            "{self:?} cannot take {} inputs",
            inputs.len()
        );
        match self {
            GateKind::And => inputs.iter().fold(!0u64, |acc, &w| acc & w),
            GateKind::Nand => !inputs.iter().fold(!0u64, |acc, &w| acc & w),
            GateKind::Or => inputs.iter().fold(0u64, |acc, &w| acc | w),
            GateKind::Nor => !inputs.iter().fold(0u64, |acc, &w| acc | w),
            GateKind::Xor => inputs.iter().fold(0u64, |acc, &w| acc ^ w),
            GateKind::Xnor => !inputs.iter().fold(0u64, |acc, &w| acc ^ w),
            GateKind::Not => !inputs[0],
            GateKind::Buf => inputs[0],
            GateKind::Const0 => 0,
            GateKind::Const1 => !0,
            GateKind::Dff => panic!("DFF has no combinational evaluation"),
        }
    }

    /// Evaluates the gate on single two-valued bits.
    ///
    /// Convenience wrapper over [`GateKind::eval_words`] masked to bit 0.
    ///
    /// # Panics
    ///
    /// Same conditions as [`GateKind::eval_words`].
    pub fn eval_bits(self, inputs: &[bool]) -> bool {
        let mut words = [0u64; 16];
        let mut heap;
        let slice: &mut [u64] = if inputs.len() <= 16 {
            &mut words[..inputs.len()]
        } else {
            heap = vec![0u64; inputs.len()];
            &mut heap
        };
        for (w, &b) in slice.iter_mut().zip(inputs) {
            *w = b as u64;
        }
        self.eval_words(slice) & 1 != 0
    }

    /// Evaluates the gate in three-valued (Kleene) logic.
    ///
    /// # Panics
    ///
    /// Same conditions as [`GateKind::eval_words`].
    pub fn eval_logic3(self, inputs: &[Logic3]) -> Logic3 {
        debug_assert!(
            self.accepts_inputs(inputs.len()),
            "{self:?} cannot take {} inputs",
            inputs.len()
        );
        match self {
            GateKind::And => inputs.iter().fold(Logic3::One, |a, &b| a.and(b)),
            GateKind::Nand => inputs.iter().fold(Logic3::One, |a, &b| a.and(b)).not(),
            GateKind::Or => inputs.iter().fold(Logic3::Zero, |a, &b| a.or(b)),
            GateKind::Nor => inputs.iter().fold(Logic3::Zero, |a, &b| a.or(b)).not(),
            GateKind::Xor => inputs.iter().fold(Logic3::Zero, |a, &b| a.xor(b)),
            GateKind::Xnor => inputs.iter().fold(Logic3::Zero, |a, &b| a.xor(b)).not(),
            GateKind::Not => inputs[0].not(),
            GateKind::Buf => inputs[0],
            GateKind::Const0 => Logic3::Zero,
            GateKind::Const1 => Logic3::One,
            GateKind::Dff => panic!("DFF has no combinational evaluation"),
        }
    }

    /// The upper-case keyword used by the ISCAS-85 `.bench` format.
    pub fn bench_keyword(self) -> &'static str {
        match self {
            GateKind::And => "AND",
            GateKind::Nand => "NAND",
            GateKind::Or => "OR",
            GateKind::Nor => "NOR",
            GateKind::Xor => "XOR",
            GateKind::Xnor => "XNOR",
            GateKind::Not => "NOT",
            GateKind::Buf => "BUFF",
            GateKind::Const0 => "CONST0",
            GateKind::Const1 => "CONST1",
            GateKind::Dff => "DFF",
        }
    }
}

impl fmt::Display for GateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.bench_keyword())
    }
}

/// Error returned when parsing a [`GateKind`] from text fails.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseGateKindError {
    /// The unrecognized keyword.
    pub keyword: String,
}

impl fmt::Display for ParseGateKindError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown gate kind keyword `{}`", self.keyword)
    }
}

impl std::error::Error for ParseGateKindError {}

impl FromStr for GateKind {
    type Err = ParseGateKindError;

    /// Parses a `.bench` keyword, case-insensitively. `BUF` and `BUFF` are
    /// both accepted (the benchmarks use both spellings).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let upper = s.to_ascii_uppercase();
        Ok(match upper.as_str() {
            "AND" => GateKind::And,
            "NAND" => GateKind::Nand,
            "OR" => GateKind::Or,
            "NOR" => GateKind::Nor,
            "XOR" => GateKind::Xor,
            "XNOR" => GateKind::Xnor,
            "NOT" | "INV" => GateKind::Not,
            "BUF" | "BUFF" => GateKind::Buf,
            "CONST0" => GateKind::Const0,
            "CONST1" => GateKind::Const1,
            "DFF" => GateKind::Dff,
            _ => {
                return Err(ParseGateKindError {
                    keyword: s.to_owned(),
                })
            }
        })
    }
}

/// A three-valued (Kleene) logic value: `0`, `1`, or unknown `X`.
///
/// Used by the interpreted three-valued event-driven baseline, which the
/// paper calls "the more natural model for event-driven simulation".
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum Logic3 {
    /// Logic low.
    Zero,
    /// Logic high.
    One,
    /// Unknown / uninitialized.
    #[default]
    X,
}

impl Logic3 {
    /// Kleene AND: `0` dominates, `X` otherwise taints.
    pub fn and(self, other: Logic3) -> Logic3 {
        match (self, other) {
            (Logic3::Zero, _) | (_, Logic3::Zero) => Logic3::Zero,
            (Logic3::One, Logic3::One) => Logic3::One,
            _ => Logic3::X,
        }
    }

    /// Kleene OR: `1` dominates, `X` otherwise taints.
    pub fn or(self, other: Logic3) -> Logic3 {
        match (self, other) {
            (Logic3::One, _) | (_, Logic3::One) => Logic3::One,
            (Logic3::Zero, Logic3::Zero) => Logic3::Zero,
            _ => Logic3::X,
        }
    }

    /// Kleene XOR: any `X` input yields `X`.
    pub fn xor(self, other: Logic3) -> Logic3 {
        match (self, other) {
            (Logic3::X, _) | (_, Logic3::X) => Logic3::X,
            (a, b) if a == b => Logic3::Zero,
            _ => Logic3::One,
        }
    }

    /// Kleene NOT: `X` stays `X`. An inherent method (not the `Not`
    /// trait) so it chains postfix in the fold expressions alongside
    /// `and`/`or`/`xor`, which have no operator traits either.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Logic3 {
        match self {
            Logic3::Zero => Logic3::One,
            Logic3::One => Logic3::Zero,
            Logic3::X => Logic3::X,
        }
    }

    /// Converts a two-valued bit.
    pub fn from_bool(b: bool) -> Logic3 {
        if b {
            Logic3::One
        } else {
            Logic3::Zero
        }
    }

    /// Returns the two-valued interpretation, or `None` for `X`.
    pub fn to_bool(self) -> Option<bool> {
        match self {
            Logic3::Zero => Some(false),
            Logic3::One => Some(true),
            Logic3::X => None,
        }
    }
}

impl fmt::Display for Logic3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Logic3::Zero => "0",
            Logic3::One => "1",
            Logic3::X => "X",
        })
    }
}

impl From<bool> for Logic3 {
    fn from(b: bool) -> Logic3 {
        Logic3::from_bool(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_eval_matches_truth_tables() {
        // Exhaustive over 2-input patterns packed into 4 bit positions:
        // a = 0011, b = 0101.
        let a = 0b0011u64;
        let b = 0b0101u64;
        let mask = 0b1111u64;
        assert_eq!(GateKind::And.eval_words(&[a, b]) & mask, 0b0001);
        assert_eq!(GateKind::Nand.eval_words(&[a, b]) & mask, 0b1110);
        assert_eq!(GateKind::Or.eval_words(&[a, b]) & mask, 0b0111);
        assert_eq!(GateKind::Nor.eval_words(&[a, b]) & mask, 0b1000);
        assert_eq!(GateKind::Xor.eval_words(&[a, b]) & mask, 0b0110);
        assert_eq!(GateKind::Xnor.eval_words(&[a, b]) & mask, 0b1001);
        assert_eq!(GateKind::Not.eval_words(&[a]) & mask, 0b1100);
        assert_eq!(GateKind::Buf.eval_words(&[a]) & mask, 0b0011);
        assert_eq!(GateKind::Const0.eval_words(&[]) & mask, 0b0000);
        assert_eq!(GateKind::Const1.eval_words(&[]) & mask, 0b1111);
    }

    #[test]
    fn three_input_gates() {
        // a=00001111 b=00110011 c=01010101 over 8 positions.
        let (a, b, c) = (0x0Fu64, 0x33, 0x55);
        let m = 0xFF;
        assert_eq!(GateKind::And.eval_words(&[a, b, c]) & m, a & b & c);
        assert_eq!(GateKind::Nor.eval_words(&[a, b, c]) & m, !(a | b | c) & m);
        assert_eq!(GateKind::Xor.eval_words(&[a, b, c]) & m, a ^ b ^ c);
    }

    #[test]
    fn bit_eval_agrees_with_word_eval() {
        for kind in [
            GateKind::And,
            GateKind::Nand,
            GateKind::Or,
            GateKind::Nor,
            GateKind::Xor,
            GateKind::Xnor,
        ] {
            for pattern in 0u32..8 {
                let bits = [pattern & 1 != 0, pattern & 2 != 0, pattern & 4 != 0];
                let words: Vec<u64> = bits.iter().map(|&b| b as u64).collect();
                assert_eq!(
                    kind.eval_bits(&bits),
                    kind.eval_words(&words) & 1 != 0,
                    "{kind:?} on {bits:?}"
                );
            }
        }
    }

    #[test]
    fn logic3_agrees_with_two_valued_on_known_inputs() {
        for kind in [
            GateKind::And,
            GateKind::Nand,
            GateKind::Or,
            GateKind::Nor,
            GateKind::Xor,
            GateKind::Xnor,
        ] {
            for pattern in 0u32..4 {
                let bits = [pattern & 1 != 0, pattern & 2 != 0];
                let l3: Vec<Logic3> = bits.iter().map(|&b| Logic3::from_bool(b)).collect();
                assert_eq!(
                    kind.eval_logic3(&l3).to_bool(),
                    Some(kind.eval_bits(&bits)),
                    "{kind:?} on {bits:?}"
                );
            }
        }
    }

    #[test]
    fn logic3_controlling_values_beat_x() {
        assert_eq!(Logic3::Zero.and(Logic3::X), Logic3::Zero);
        assert_eq!(Logic3::One.or(Logic3::X), Logic3::One);
        assert_eq!(Logic3::One.and(Logic3::X), Logic3::X);
        assert_eq!(Logic3::Zero.or(Logic3::X), Logic3::X);
        assert_eq!(Logic3::X.xor(Logic3::One), Logic3::X);
        assert_eq!(Logic3::X.not(), Logic3::X);
    }

    #[test]
    fn logic3_gate_eval_with_x() {
        use Logic3::*;
        assert_eq!(GateKind::And.eval_logic3(&[Zero, X]), Zero);
        assert_eq!(GateKind::Nand.eval_logic3(&[Zero, X]), One);
        assert_eq!(GateKind::Or.eval_logic3(&[One, X]), One);
        assert_eq!(GateKind::Nor.eval_logic3(&[One, X]), Zero);
        assert_eq!(GateKind::Xor.eval_logic3(&[One, X]), X);
    }

    #[test]
    fn keyword_round_trips() {
        for kind in GateKind::ALL {
            let parsed: GateKind = kind.bench_keyword().parse().expect("round trip");
            assert_eq!(parsed, kind);
        }
        assert_eq!("buf".parse::<GateKind>(), Ok(GateKind::Buf));
        assert_eq!("inv".parse::<GateKind>(), Ok(GateKind::Not));
        assert!("FROB".parse::<GateKind>().is_err());
    }

    #[test]
    fn arity_checks() {
        assert!(GateKind::And.accepts_inputs(2));
        assert!(GateKind::And.accepts_inputs(9));
        assert!(!GateKind::And.accepts_inputs(1));
        assert!(GateKind::Not.accepts_inputs(1));
        assert!(!GateKind::Not.accepts_inputs(2));
        assert!(GateKind::Const1.accepts_inputs(0));
        assert!(!GateKind::Const1.accepts_inputs(1));
    }

    #[test]
    fn parse_error_display_names_keyword() {
        let err = "ZAP".parse::<GateKind>().unwrap_err();
        assert_eq!(err.to_string(), "unknown gate kind keyword `ZAP`");
    }
}
