//! Programmatic netlist construction.

use std::collections::HashMap;
use std::fmt;

use crate::netlist::{Gate, Netlist};
use crate::{GateId, GateKind, NetId};

/// Error produced while building a netlist.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum BuildError {
    /// A gate was given an input count outside its kind's legal arity.
    BadArity {
        /// The offending gate kind.
        kind: GateKind,
        /// The number of inputs supplied.
        got: usize,
    },
    /// Two drivers were attached to the same net.
    MultipleDrivers {
        /// The doubly-driven net.
        net: String,
    },
    /// The same name was used for two different nets.
    DuplicateName {
        /// The reused name.
        name: String,
    },
    /// A primary output was declared for a net id that does not exist.
    UnknownNet,
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::BadArity { kind, got } => {
                write!(f, "gate kind {kind} cannot take {got} inputs")
            }
            BuildError::MultipleDrivers { net } => {
                write!(f, "net `{net}` already has a driver")
            }
            BuildError::DuplicateName { name } => {
                write!(f, "net name `{name}` already in use")
            }
            BuildError::UnknownNet => write!(f, "reference to a net that was never declared"),
        }
    }
}

impl std::error::Error for BuildError {}

/// Incrementally builds a [`Netlist`].
///
/// # Example
///
/// ```
/// use uds_netlist::{NetlistBuilder, GateKind};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = NetlistBuilder::named("half_adder");
/// let a = b.input("a");
/// let c = b.input("b");
/// let sum = b.gate(GateKind::Xor, &[a, c], "sum")?;
/// let carry = b.gate(GateKind::And, &[a, c], "carry")?;
/// b.output(sum);
/// b.output(carry);
/// let netlist = b.finish()?;
/// assert_eq!(netlist.gate_count(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, Default)]
pub struct NetlistBuilder {
    name: String,
    net_names: Vec<String>,
    name_index: HashMap<String, NetId>,
    gates: Vec<Gate>,
    driver: Vec<Option<GateId>>,
    primary_inputs: Vec<NetId>,
    primary_outputs: Vec<NetId>,
    fresh_counter: u64,
    error: Option<BuildError>,
}

impl NetlistBuilder {
    /// Creates an empty builder for an unnamed circuit.
    pub fn new() -> Self {
        Self::named("unnamed")
    }

    /// Creates an empty builder with a circuit name.
    pub fn named(name: impl Into<String>) -> Self {
        NetlistBuilder {
            name: name.into(),
            ..NetlistBuilder::default()
        }
    }

    /// Number of nets declared so far.
    pub fn net_count(&self) -> usize {
        self.net_names.len()
    }

    /// Number of gates added so far.
    pub fn gate_count(&self) -> usize {
        self.gates.len()
    }

    /// Declares a new primary input net.
    ///
    /// If the name is already taken the error is deferred to
    /// [`NetlistBuilder::finish`], so construction code can stay free of
    /// `?` on every line.
    pub fn input(&mut self, name: impl Into<String>) -> NetId {
        let id = self.intern_new(name.into());
        self.primary_inputs.push(id);
        id
    }

    /// Declares a fresh, uniquely named net with no driver yet.
    ///
    /// Useful when wiring gates whose output name does not matter; the
    /// generated names look like `_t0`, `_t1`, ….
    pub fn fresh_net(&mut self) -> NetId {
        loop {
            let name = format!("_t{}", self.fresh_counter);
            self.fresh_counter += 1;
            if !self.name_index.contains_key(&name) {
                return self.intern_new(name);
            }
        }
    }

    /// Adds a gate driving a newly named net and returns that net.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::BadArity`] if `inputs.len()` is illegal for
    /// `kind`, or [`BuildError::DuplicateName`] if `output_name` is taken.
    pub fn gate(
        &mut self,
        kind: GateKind,
        inputs: &[NetId],
        output_name: impl Into<String>,
    ) -> Result<NetId, BuildError> {
        let name = output_name.into();
        if self.name_index.contains_key(&name) {
            return Err(BuildError::DuplicateName { name });
        }
        let out = self.intern_new(name);
        self.gate_onto(kind, inputs, out)?;
        Ok(out)
    }

    /// Adds a gate driving an existing (so far driverless) net.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::BadArity`] for an illegal input count or
    /// [`BuildError::MultipleDrivers`] if `output` already has a driver.
    pub fn gate_onto(
        &mut self,
        kind: GateKind,
        inputs: &[NetId],
        output: NetId,
    ) -> Result<GateId, BuildError> {
        if !kind.accepts_inputs(inputs.len()) {
            return Err(BuildError::BadArity {
                kind,
                got: inputs.len(),
            });
        }
        if self.driver[output].is_some() {
            return Err(BuildError::MultipleDrivers {
                net: self.net_names[output].clone(),
            });
        }
        let id = GateId::from_index(self.gates.len());
        self.gates.push(Gate {
            kind,
            inputs: inputs.to_vec(),
            output,
        });
        self.driver[output] = Some(id);
        Ok(id)
    }

    /// Convenience: adds a gate with an auto-generated output name.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::BadArity`] for an illegal input count.
    pub fn gate_fresh(&mut self, kind: GateKind, inputs: &[NetId]) -> Result<NetId, BuildError> {
        let out = self.fresh_net();
        self.gate_onto(kind, inputs, out)?;
        Ok(out)
    }

    /// Interns a named net with no driver, or returns the existing net
    /// with that name.
    ///
    /// Used by parsers, where a name may be referenced before the line
    /// that defines it.
    pub fn get_or_create_net(&mut self, name: &str) -> NetId {
        if let Some(&id) = self.name_index.get(name) {
            return id;
        }
        self.intern_new(name.to_owned())
    }

    /// Declares an already-interned net to be a primary input.
    /// Idempotent.
    pub fn declare_input(&mut self, net: NetId) {
        if net.index() >= self.net_names.len() {
            self.error.get_or_insert(BuildError::UnknownNet);
            return;
        }
        if !self.primary_inputs.contains(&net) {
            self.primary_inputs.push(net);
        }
    }

    /// Marks a net as a primary output. Marking the same net twice is
    /// idempotent.
    pub fn output(&mut self, net: NetId) {
        if net.index() >= self.net_names.len() {
            self.error.get_or_insert(BuildError::UnknownNet);
            return;
        }
        if !self.primary_outputs.contains(&net) {
            self.primary_outputs.push(net);
        }
    }

    /// Finishes construction.
    ///
    /// # Errors
    ///
    /// Returns the first deferred error (duplicate input name, unknown
    /// output net) if any occurred.
    pub fn finish(self) -> Result<Netlist, BuildError> {
        if let Some(err) = self.error {
            return Err(err);
        }
        let mut fanout: Vec<Vec<GateId>> = vec![Vec::new(); self.net_names.len()];
        for (idx, gate) in self.gates.iter().enumerate() {
            let gid = GateId::from_index(idx);
            for &input in &gate.inputs {
                let list = &mut fanout[input];
                if list.last() != Some(&gid) && !list.contains(&gid) {
                    list.push(gid);
                }
            }
        }
        Ok(Netlist {
            name: self.name,
            net_names: self.net_names,
            name_index: self.name_index,
            gates: self.gates,
            driver: self.driver,
            fanout,
            primary_inputs: self.primary_inputs,
            primary_outputs: self.primary_outputs,
        })
    }

    fn intern_new(&mut self, name: String) -> NetId {
        if self.name_index.contains_key(&name) {
            self.error
                .get_or_insert(BuildError::DuplicateName { name: name.clone() });
        }
        let id = NetId::from_index(self.net_names.len());
        self.name_index.insert(name.clone(), id);
        self.net_names.push(name);
        self.driver.push(None);
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicate_gate_output_name_is_rejected() {
        let mut b = NetlistBuilder::new();
        let a = b.input("A");
        let c = b.input("C");
        b.gate(GateKind::And, &[a, c], "D").unwrap();
        let err = b.gate(GateKind::Or, &[a, c], "D").unwrap_err();
        assert_eq!(err, BuildError::DuplicateName { name: "D".into() });
    }

    #[test]
    fn duplicate_input_name_is_deferred_to_finish() {
        let mut b = NetlistBuilder::new();
        b.input("A");
        b.input("A");
        let err = b.finish().unwrap_err();
        assert_eq!(err, BuildError::DuplicateName { name: "A".into() });
    }

    #[test]
    fn bad_arity_is_rejected() {
        let mut b = NetlistBuilder::new();
        let a = b.input("A");
        let err = b.gate(GateKind::And, &[a], "D").unwrap_err();
        assert!(matches!(err, BuildError::BadArity { got: 1, .. }));
    }

    #[test]
    fn double_driver_is_rejected() {
        let mut b = NetlistBuilder::new();
        let a = b.input("A");
        let c = b.input("C");
        let d = b.gate(GateKind::And, &[a, c], "D").unwrap();
        let err = b.gate_onto(GateKind::Or, &[a, c], d).unwrap_err();
        assert_eq!(err, BuildError::MultipleDrivers { net: "D".into() });
    }

    #[test]
    fn fresh_nets_get_unique_names() {
        let mut b = NetlistBuilder::new();
        let x = b.fresh_net();
        let y = b.fresh_net();
        assert_ne!(x, y);
        let nl_names: Vec<_> = vec![x, y];
        assert_eq!(nl_names.len(), 2);
    }

    #[test]
    fn fresh_net_skips_taken_names() {
        let mut b = NetlistBuilder::new();
        b.input("_t0");
        let x = b.fresh_net();
        let nl = {
            b.output(x);
            // drive x so the netlist is sensible
            let mut b = b;
            let a = b.input("A");
            b.gate_onto(GateKind::Buf, &[a], x).unwrap();
            b.finish().unwrap()
        };
        assert_eq!(nl.net_name(x), "_t1");
    }

    #[test]
    fn output_is_idempotent() {
        let mut b = NetlistBuilder::new();
        let a = b.input("A");
        b.output(a);
        b.output(a);
        let nl = b.finish().unwrap();
        assert_eq!(nl.primary_outputs().len(), 1);
    }

    #[test]
    fn error_display_is_lowercase_prose() {
        let err = BuildError::MultipleDrivers { net: "N".into() };
        assert_eq!(err.to_string(), "net `N` already has a driver");
    }
}
