//! Structural circuit generators.
//!
//! Real benchmark netlists cannot be redistributed with this repository,
//! so this module supplies two substitutes:
//!
//! * classic parametric structures ([`adders`], [`multiplier`], [`trees`],
//!   [`comparator`], [`alu`]) built gate-by-gate, exactly as a structural
//!   HDL netlist would elaborate them;
//! * a seeded random layered-DAG generator ([`random`]) that hits an exact
//!   gate count and logic depth;
//! * an ISCAS-85-like suite ([`iscas`]) that calibrates the above to the
//!   published statistics of the ten paper benchmarks (gate count, port
//!   counts, depth — hence bit-field word counts).

pub mod adders;
pub mod alu;
pub mod comparator;
pub mod iscas;
pub mod multiplier;
pub mod random;
pub mod shifter;
pub mod trees;

use std::fmt;

/// Error returned by generators when a parameter set is unsatisfiable.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct GenerateError {
    /// Human-readable reason.
    pub reason: String,
}

impl GenerateError {
    pub(crate) fn new(reason: impl Into<String>) -> Self {
        GenerateError {
            reason: reason.into(),
        }
    }
}

impl fmt::Display for GenerateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot generate circuit: {}", self.reason)
    }
}

impl std::error::Error for GenerateError {}
