//! Tree-shaped structures: parity trees, reduction trees, multiplexer
//! trees and decoders.
//!
//! Balanced XOR trees are the structural flavor of the ISCAS-85
//! error-correcting circuits (c499/c1355); multiplexer trees and decoders
//! add the wide, shallow, high-fanout shapes that appear in the
//! control-dominated benchmarks.

use crate::{BuildError, GateKind, NetId, Netlist, NetlistBuilder};

use super::GenerateError;

/// Builds a balanced reduction tree of 2-input `kind` gates over `n`
/// inputs (`i0..`), producing a single output `y`.
///
/// With [`GateKind::Xor`] this is a parity tree of depth `ceil(log2 n)`.
///
/// # Errors
///
/// Returns [`GenerateError`] if `n < 2` or `kind` is not a 2-input-capable
/// logic kind.
///
/// # Example
///
/// ```
/// use uds_netlist::generators::trees::reduction_tree;
/// use uds_netlist::{GateKind, levelize};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let nl = reduction_tree(GateKind::Xor, 32)?;
/// assert_eq!(levelize(&nl)?.depth, 5);
/// # Ok(())
/// # }
/// ```
pub fn reduction_tree(kind: GateKind, n: usize) -> Result<Netlist, GenerateError> {
    if n < 2 {
        return Err(GenerateError::new("reduction tree needs at least 2 inputs"));
    }
    if !kind.accepts_inputs(2) {
        return Err(GenerateError::new(format!(
            "gate kind {kind} cannot form a 2-input tree"
        )));
    }
    let mut b = NetlistBuilder::named(format!("{}tree{n}", kind.bench_keyword().to_lowercase()));
    let mut layer: Vec<NetId> = (0..n).map(|i| b.input(format!("i{i}"))).collect();
    let result = (|| -> Result<NetId, BuildError> {
        while layer.len() > 1 {
            let mut next = Vec::with_capacity(layer.len() / 2 + 1);
            let mut chunks = layer.chunks_exact(2);
            for pair in &mut chunks {
                next.push(b.gate_fresh(kind, &[pair[0], pair[1]])?);
            }
            if let [odd] = chunks.remainder() {
                next.push(*odd);
            }
            layer = next;
        }
        Ok(layer[0])
    })();
    let y = result.map_err(|e| GenerateError::new(e.to_string()))?;
    b.output(y);
    b.finish().map_err(|e| GenerateError::new(e.to_string()))
}

/// Builds a `2^sel_bits : 1` multiplexer tree.
///
/// Ports: data inputs `d0..`, select inputs `s0..`, output `y`.
/// Each 2:1 mux is `y = (a & !s) | (b & s)`, so the select nets fan out
/// across the whole tree — a good stress for shift-elimination (the
/// reconvergent fanout forces retained shifts).
///
/// # Errors
///
/// Returns [`GenerateError`] if `sel_bits == 0` or the tree would exceed
/// 20 select bits (1M data inputs).
pub fn mux_tree(sel_bits: usize) -> Result<Netlist, GenerateError> {
    if sel_bits == 0 {
        return Err(GenerateError::new("mux tree needs at least 1 select bit"));
    }
    if sel_bits > 20 {
        return Err(GenerateError::new("mux tree larger than 2^20 inputs"));
    }
    let n = 1usize << sel_bits;
    let mut b = NetlistBuilder::named(format!("mux{n}"));
    let mut layer: Vec<NetId> = (0..n).map(|i| b.input(format!("d{i}"))).collect();
    let sel: Vec<NetId> = (0..sel_bits).map(|i| b.input(format!("s{i}"))).collect();
    let result = (|| -> Result<NetId, BuildError> {
        for (bit, &s) in sel.iter().enumerate() {
            let ns = b.gate_fresh(GateKind::Not, &[s])?;
            let mut next = Vec::with_capacity(layer.len() / 2);
            for pair in layer.chunks_exact(2) {
                let low = b.gate_fresh(GateKind::And, &[pair[0], ns])?;
                let high = b.gate_fresh(GateKind::And, &[pair[1], s])?;
                next.push(b.gate_fresh(GateKind::Or, &[low, high])?);
            }
            debug_assert_eq!(next.len() << (bit + 1), n);
            layer = next;
        }
        Ok(layer[0])
    })();
    let y = result.map_err(|e| GenerateError::new(e.to_string()))?;
    b.output(y);
    b.finish().map_err(|e| GenerateError::new(e.to_string()))
}

/// Builds an `n`-to-`2^n` one-hot decoder with an enable input.
///
/// Ports: inputs `a0..a{n-1}`, `en`; outputs `y0..y{2^n-1}` where
/// `y_k = en & (a == k)`.
///
/// # Errors
///
/// Returns [`GenerateError`] if `n == 0` or `n > 16`.
pub fn decoder(n: usize) -> Result<Netlist, GenerateError> {
    if n == 0 {
        return Err(GenerateError::new("decoder needs at least 1 address bit"));
    }
    if n > 16 {
        return Err(GenerateError::new("decoder larger than 2^16 outputs"));
    }
    let mut b = NetlistBuilder::named(format!("dec{n}"));
    let addr: Vec<NetId> = (0..n).map(|i| b.input(format!("a{i}"))).collect();
    let en = b.input("en");
    let result = (|| -> Result<(), BuildError> {
        let mut not_addr = Vec::with_capacity(n);
        for &a in &addr {
            not_addr.push(b.gate_fresh(GateKind::Not, &[a])?);
        }
        for k in 0..(1usize << n) {
            let mut terms: Vec<NetId> = (0..n)
                .map(|bit| {
                    if k >> bit & 1 != 0 {
                        addr[bit]
                    } else {
                        not_addr[bit]
                    }
                })
                .collect();
            terms.push(en);
            let y = b.gate(GateKind::And, &terms, format!("y{k}"))?;
            b.output(y);
        }
        Ok(())
    })();
    result.map_err(|e| GenerateError::new(e.to_string()))?;
    b.finish().map_err(|e| GenerateError::new(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_oracle::eval_oracle;
    use crate::{levelize, validate};
    use std::collections::HashMap;

    #[test]
    fn parity_tree_computes_parity() {
        let nl = reduction_tree(GateKind::Xor, 9).unwrap();
        validate::check(&nl, validate::Mode::Combinational).unwrap();
        for pattern in [0u32, 1, 0b101010101, 0b111111111, 0b100000001] {
            let mut inputs = HashMap::new();
            let names: Vec<String> = (0..9).map(|i| format!("i{i}")).collect();
            for (i, name) in names.iter().enumerate() {
                inputs.insert(name.as_str(), pattern >> i & 1 != 0);
            }
            let out = eval_oracle(&nl, &inputs);
            let want = pattern.count_ones() % 2 == 1;
            assert_eq!(out.values().next(), Some(&want), "pattern {pattern:b}");
        }
    }

    #[test]
    fn and_tree_is_logarithmic() {
        let nl = reduction_tree(GateKind::And, 64).unwrap();
        assert_eq!(levelize(&nl).unwrap().depth, 6);
        assert_eq!(nl.gate_count(), 63);
    }

    #[test]
    fn tree_rejects_not_and_constants() {
        assert!(reduction_tree(GateKind::Not, 8).is_err());
        assert!(reduction_tree(GateKind::Const0, 8).is_err());
        assert!(reduction_tree(GateKind::Xor, 1).is_err());
    }

    #[test]
    fn mux_selects_every_input() {
        let sel_bits = 3;
        let nl = mux_tree(sel_bits).unwrap();
        validate::check(&nl, validate::Mode::Combinational).unwrap();
        let n = 1usize << sel_bits;
        for selected in 0..n {
            let mut inputs = HashMap::new();
            let dnames: Vec<String> = (0..n).map(|i| format!("d{i}")).collect();
            let snames: Vec<String> = (0..sel_bits).map(|i| format!("s{i}")).collect();
            for (i, name) in dnames.iter().enumerate() {
                inputs.insert(name.as_str(), i == selected);
            }
            for (bit, name) in snames.iter().enumerate() {
                inputs.insert(name.as_str(), selected >> bit & 1 != 0);
            }
            let out = eval_oracle(&nl, &inputs);
            assert_eq!(out.values().next(), Some(&true), "select {selected}");
        }
    }

    #[test]
    fn decoder_is_one_hot() {
        let nl = decoder(3).unwrap();
        validate::check(&nl, validate::Mode::Combinational).unwrap();
        for k in 0usize..8 {
            let mut inputs = HashMap::new();
            let names: Vec<String> = (0..3).map(|i| format!("a{i}")).collect();
            for (bit, name) in names.iter().enumerate() {
                inputs.insert(name.as_str(), k >> bit & 1 != 0);
            }
            inputs.insert("en", true);
            let out = eval_oracle(&nl, &inputs);
            for j in 0..8 {
                assert_eq!(out[&format!("y{j}")], j == k, "k={k} j={j}");
            }
        }
    }

    #[test]
    fn decoder_enable_gates_everything() {
        let nl = decoder(2).unwrap();
        let mut inputs = HashMap::new();
        inputs.insert("a0", true);
        inputs.insert("a1", true);
        inputs.insert("en", false);
        let out = eval_oracle(&nl, &inputs);
        assert!(out.values().all(|&v| !v));
    }

    #[test]
    fn size_limits_are_enforced() {
        assert!(mux_tree(0).is_err());
        assert!(mux_tree(21).is_err());
        assert!(decoder(0).is_err());
        assert!(decoder(17).is_err());
    }
}
