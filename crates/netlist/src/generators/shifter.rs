//! Barrel shifter and priority encoder — two more datapath shapes for
//! the generator library (wide select fanout, long unbalanced
//! priority chains).

use crate::{BuildError, GateKind, NetId, Netlist, NetlistBuilder};

use super::GenerateError;

/// Builds a logical-left barrel shifter: `y = d << s` over `2^stages`
/// bit positions, zero-filling.
///
/// Ports: data `d0..d{2^stages-1}`, shift amount `s0..s{stages-1}`,
/// outputs `y0..`. Each stage is a row of 2:1 muxes controlled by one
/// select bit, so the select nets fan out across entire rows — a dense
/// source of the alignment conflicts shift elimination must handle.
///
/// # Errors
///
/// Returns [`GenerateError`] if `stages == 0` or `stages > 10`.
///
/// # Example
///
/// ```
/// use uds_netlist::generators::shifter::barrel_shifter;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let nl = barrel_shifter(3)?; // 8-bit shifter
/// assert_eq!(nl.primary_outputs().len(), 8);
/// # Ok(())
/// # }
/// ```
pub fn barrel_shifter(stages: usize) -> Result<Netlist, GenerateError> {
    if stages == 0 {
        return Err(GenerateError::new("barrel shifter needs at least 1 stage"));
    }
    if stages > 10 {
        return Err(GenerateError::new("barrel shifter larger than 1024 bits"));
    }
    let width = 1usize << stages;
    let mut b = NetlistBuilder::named(format!("bshift{width}"));
    let mut row: Vec<NetId> = (0..width).map(|i| b.input(format!("d{i}"))).collect();
    let selects: Vec<NetId> = (0..stages).map(|i| b.input(format!("s{i}"))).collect();

    let result = (|| -> Result<(), BuildError> {
        let zero = b.gate_fresh(GateKind::Const0, &[])?;
        for (stage, &select) in selects.iter().enumerate() {
            let amount = 1usize << stage;
            let not_select = b.gate_fresh(GateKind::Not, &[select])?;
            let mut next = Vec::with_capacity(width);
            for position in 0..width {
                // y[p] = select ? row[p - amount] : row[p]
                let shifted_src = if position >= amount {
                    row[position - amount]
                } else {
                    zero
                };
                let keep = b.gate_fresh(GateKind::And, &[row[position], not_select])?;
                let take = b.gate_fresh(GateKind::And, &[shifted_src, select])?;
                next.push(b.gate_fresh(GateKind::Or, &[keep, take])?);
            }
            row = next;
        }
        for (position, &net) in row.iter().enumerate() {
            let named = b.gate(GateKind::Buf, &[net], format!("y{position}"))?;
            b.output(named);
        }
        Ok(())
    })();
    result.map_err(|e| GenerateError::new(e.to_string()))?;
    b.finish().map_err(|e| GenerateError::new(e.to_string()))
}

/// Builds an `n`-input priority encoder: output `y_k` is high iff input
/// `k` is the highest-indexed asserted input; `valid` is high iff any
/// input is asserted.
///
/// Ports: inputs `i0..i{n-1}`; outputs `y0..y{n-1}`, `valid`.
///
/// # Errors
///
/// Returns [`GenerateError`] if `n < 2`.
pub fn priority_encoder(n: usize) -> Result<Netlist, GenerateError> {
    if n < 2 {
        return Err(GenerateError::new(
            "priority encoder needs at least 2 inputs",
        ));
    }
    let mut b = NetlistBuilder::named(format!("prienc{n}"));
    let inputs: Vec<NetId> = (0..n).map(|i| b.input(format!("i{i}"))).collect();

    let result = (|| -> Result<(), BuildError> {
        // none_above[k] = NOT(i_{k+1} | ... | i_{n-1}), built as a chain.
        let mut any_above = Vec::with_capacity(n); // any_above[k]
        let mut running: Option<NetId> = None;
        for k in (0..n).rev() {
            any_above.push(running);
            running = Some(match running {
                None => inputs[k],
                Some(acc) => b.gate_fresh(GateKind::Or, &[acc, inputs[k]])?,
            });
        }
        any_above.reverse(); // any_above[k] = OR of inputs above k (None for top)
        for k in 0..n {
            let y = match any_above[k] {
                None => b.gate(GateKind::Buf, &[inputs[k]], format!("y{k}"))?,
                Some(above) => {
                    let none_above = b.gate_fresh(GateKind::Not, &[above])?;
                    b.gate(GateKind::And, &[inputs[k], none_above], format!("y{k}"))?
                }
            };
            b.output(y);
        }
        let valid = b.gate(GateKind::Buf, &[running.expect("n >= 2")], "valid")?;
        b.output(valid);
        Ok(())
    })();
    result.map_err(|e| GenerateError::new(e.to_string()))?;
    b.finish().map_err(|e| GenerateError::new(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_oracle::eval_oracle;
    use crate::validate;
    use std::collections::HashMap;

    #[test]
    fn barrel_shifts_exhaustively() {
        let stages = 3;
        let width = 8usize;
        let nl = barrel_shifter(stages).unwrap();
        validate::check_lenient(&nl, validate::Mode::Combinational).unwrap();
        let dnames: Vec<String> = (0..width).map(|i| format!("d{i}")).collect();
        let snames: Vec<String> = (0..stages).map(|i| format!("s{i}")).collect();
        for data in [0b1011_0001u32, 0b1111_1111, 0b0000_0001] {
            for shift in 0..width {
                let mut inputs = HashMap::new();
                for (i, name) in dnames.iter().enumerate() {
                    inputs.insert(name.as_str(), data >> i & 1 != 0);
                }
                for (bit, name) in snames.iter().enumerate() {
                    inputs.insert(name.as_str(), shift >> bit & 1 != 0);
                }
                let out = eval_oracle(&nl, &inputs);
                let expected = (data << shift) & 0xFF;
                for position in 0..width {
                    assert_eq!(
                        out[&format!("y{position}")],
                        expected >> position & 1 != 0,
                        "data {data:08b} << {shift}, bit {position}"
                    );
                }
            }
        }
    }

    #[test]
    fn priority_encoder_picks_highest() {
        let n = 6;
        let nl = priority_encoder(n).unwrap();
        validate::check(&nl, validate::Mode::Combinational).unwrap();
        let names: Vec<String> = (0..n).map(|i| format!("i{i}")).collect();
        for pattern in 0u32..(1 << n) {
            let mut inputs = HashMap::new();
            for (i, name) in names.iter().enumerate() {
                inputs.insert(name.as_str(), pattern >> i & 1 != 0);
            }
            let out = eval_oracle(&nl, &inputs);
            let highest = (0..n).rev().find(|&k| pattern >> k & 1 != 0);
            for k in 0..n {
                assert_eq!(
                    out[&format!("y{k}")],
                    Some(k) == highest,
                    "pattern {pattern:06b} bit {k}"
                );
            }
            assert_eq!(out["valid"], pattern != 0, "pattern {pattern:06b}");
        }
    }

    #[test]
    fn size_limits() {
        assert!(barrel_shifter(0).is_err());
        assert!(barrel_shifter(11).is_err());
        assert!(priority_encoder(1).is_err());
    }
}
