//! A small ALU slice, the structural flavor of control/datapath
//! benchmarks such as ISCAS-85 c880 (which contains an 8-bit ALU).

use crate::{BuildError, GateKind, NetId, Netlist, NetlistBuilder};

use super::adders::{full_adder, AdderStyle};
use super::GenerateError;

/// Builds an `n`-bit ALU with four operations selected by `s1 s0`:
///
/// | `s1` | `s0` | result |
/// |------|------|--------|
/// | 0 | 0 | `a AND b` |
/// | 0 | 1 | `a OR b`  |
/// | 1 | 0 | `a XOR b` |
/// | 1 | 1 | `a + b + cin` |
///
/// Ports: inputs `a0..`, `b0..`, `s0`, `s1`, `cin`; outputs `y0..y{n-1}`,
/// `cout` (meaningful only for the add operation).
///
/// The select lines fan out to every bit slice, and the adder's carry
/// chain reconverges with the logical results in the output muxes — a
/// dense mixture of the structures that make shift elimination
/// interesting.
///
/// # Errors
///
/// Returns [`GenerateError`] if `n == 0`.
///
/// # Example
///
/// ```
/// use uds_netlist::generators::alu::alu;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let nl = alu(8)?;
/// assert_eq!(nl.primary_inputs().len(), 8 + 8 + 3);
/// assert_eq!(nl.primary_outputs().len(), 9);
/// # Ok(())
/// # }
/// ```
pub fn alu(n: usize) -> Result<Netlist, GenerateError> {
    if n == 0 {
        return Err(GenerateError::new("ALU width must be at least 1"));
    }
    let mut b = NetlistBuilder::named(format!("alu{n}"));
    let a: Vec<NetId> = (0..n).map(|i| b.input(format!("a{i}"))).collect();
    let bb: Vec<NetId> = (0..n).map(|i| b.input(format!("b{i}"))).collect();
    let s0 = b.input("s0");
    let s1 = b.input("s1");
    let cin = b.input("cin");

    let result = (|| -> Result<(), BuildError> {
        let ns0 = b.gate_fresh(GateKind::Not, &[s0])?;
        let ns1 = b.gate_fresh(GateKind::Not, &[s1])?;
        // One-hot operation selects.
        let sel_and = b.gate_fresh(GateKind::And, &[ns1, ns0])?;
        let sel_or = b.gate_fresh(GateKind::And, &[ns1, s0])?;
        let sel_xor = b.gate_fresh(GateKind::And, &[s1, ns0])?;
        let sel_add = b.gate_fresh(GateKind::And, &[s1, s0])?;

        let mut carry = cin;
        for i in 0..n {
            let and_i = b.gate_fresh(GateKind::And, &[a[i], bb[i]])?;
            let or_i = b.gate_fresh(GateKind::Or, &[a[i], bb[i]])?;
            let xor_i = b.gate_fresh(GateKind::Xor, &[a[i], bb[i]])?;
            let (sum_i, cout) = full_adder(&mut b, AdderStyle::NativeXor, a[i], bb[i], carry)?;
            carry = cout;

            let t_and = b.gate_fresh(GateKind::And, &[sel_and, and_i])?;
            let t_or = b.gate_fresh(GateKind::And, &[sel_or, or_i])?;
            let t_xor = b.gate_fresh(GateKind::And, &[sel_xor, xor_i])?;
            let t_add = b.gate_fresh(GateKind::And, &[sel_add, sum_i])?;
            let y = b.gate(GateKind::Or, &[t_and, t_or, t_xor, t_add], format!("y{i}"))?;
            b.output(y);
        }
        let cout = b.gate(GateKind::Buf, &[carry], "cout")?;
        b.output(cout);
        Ok(())
    })();
    result.map_err(|e| GenerateError::new(e.to_string()))?;
    b.finish().map_err(|e| GenerateError::new(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_oracle::eval_oracle;
    use crate::validate;
    use std::collections::HashMap;

    fn run(nl: &Netlist, n: usize, a: u64, b: u64, s: u8, cin: bool) -> (u64, bool) {
        let mut inputs = HashMap::new();
        let names: Vec<String> = (0..n)
            .flat_map(|i| [format!("a{i}"), format!("b{i}")])
            .collect();
        for i in 0..n {
            inputs.insert(names[2 * i].as_str(), a >> i & 1 != 0);
            inputs.insert(names[2 * i + 1].as_str(), b >> i & 1 != 0);
        }
        inputs.insert("s0", s & 1 != 0);
        inputs.insert("s1", s & 2 != 0);
        inputs.insert("cin", cin);
        let out = eval_oracle(nl, &inputs);
        let mut y = 0u64;
        for i in 0..n {
            if out[&format!("y{i}")] {
                y |= 1 << i;
            }
        }
        (y, out["cout"])
    }

    #[test]
    fn all_four_operations_work() {
        let n = 6;
        let nl = alu(n).unwrap();
        validate::check(&nl, validate::Mode::Combinational).unwrap();
        let mask = (1u64 << n) - 1;
        for (a, b) in [(0u64, 0u64), (63, 21), (42, 21), (63, 63), (1, 62)] {
            assert_eq!(run(&nl, n, a, b, 0, false).0, a & b, "AND {a},{b}");
            assert_eq!(run(&nl, n, a, b, 1, false).0, a | b, "OR {a},{b}");
            assert_eq!(run(&nl, n, a, b, 2, false).0, a ^ b, "XOR {a},{b}");
            let (sum, cout) = run(&nl, n, a, b, 3, true);
            let full = a + b + 1;
            assert_eq!(sum, full & mask, "ADD {a},{b}");
            assert_eq!(cout, full > mask, "ADD carry {a},{b}");
        }
    }

    #[test]
    fn zero_width_is_rejected() {
        assert!(alu(0).is_err());
    }
}
