//! Seeded random layered-DAG circuits with exact gate count and depth.
//!
//! This is the workhorse behind the synthetic ISCAS-85 suite: given a
//! target (primary inputs, primary outputs, gates, depth) it produces a
//! deterministic pseudo-random circuit hitting the gate count and depth
//! *exactly*, which is what the paper's tables are sensitive to (depth
//! decides bit-field word counts; gate count decides generated-code size).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{GateKind, NetId, Netlist, NetlistBuilder};

use super::GenerateError;

/// Parameters for [`layered`].
#[derive(Clone, PartialEq, Debug)]
pub struct LayeredConfig {
    /// Circuit name.
    pub name: String,
    /// Number of primary inputs (at least 1).
    pub primary_inputs: usize,
    /// Minimum number of primary outputs. Nets that end up driving
    /// nothing are also promoted to primary outputs so the circuit has no
    /// dead logic, which can push the final count slightly above this.
    pub primary_outputs: usize,
    /// Exact number of gates (at least `depth`).
    pub gates: usize,
    /// Exact logic depth (at least 1).
    pub depth: u32,
    /// Fraction of 2-input gates drawn from {XOR, XNOR} instead of
    /// {AND, NAND, OR, NOR}. `0.0..=1.0`.
    pub xor_fraction: f64,
    /// Fraction of gates that are single-input inverters/buffers.
    pub inverter_fraction: f64,
    /// Probability that each *extra* gate input (beyond the first, which
    /// always comes from the previous level) is drawn from the previous
    /// level rather than uniformly from all lower levels. High locality
    /// produces small PC-sets (the paper's c2670 anomaly); low locality
    /// produces wide PC-sets.
    pub locality: f64,
    /// Maximum gate fan-in (at least 2).
    pub max_fanin: usize,
    /// How far below the current level a non-local input may reach
    /// (at least 1; `usize::MAX` means "any lower level"). Small windows
    /// keep minlevels close to levels even when `locality < 1`, which is
    /// how narrow PC-sets arise without degenerating to a pipeline.
    pub leak_window: usize,
    /// RNG seed; equal configs produce identical netlists.
    pub seed: u64,
}

impl LayeredConfig {
    /// A reasonable starting point: mostly NAND/NOR, fan-in up to 4,
    /// moderate locality.
    pub fn new(name: impl Into<String>, gates: usize, depth: u32) -> Self {
        LayeredConfig {
            name: name.into(),
            primary_inputs: 16,
            primary_outputs: 8,
            gates,
            depth,
            xor_fraction: 0.1,
            inverter_fraction: 0.1,
            locality: 0.4,
            max_fanin: 4,
            leak_window: usize::MAX,
            seed: 0x5eed,
        }
    }
}

/// Generates a random layered DAG per `config`.
///
/// Guarantees, for any accepted config:
///
/// * gate count is exactly `config.gates`;
/// * circuit depth is exactly `config.depth`;
/// * the netlist passes strict validation (no dangling or undriven nets);
/// * output is a pure function of `config` (including `seed`).
///
/// # Errors
///
/// Returns [`GenerateError`] for unsatisfiable configs: zero inputs,
/// `gates < depth`, `depth == 0`, `max_fanin < 2`, or fractions outside
/// `0.0..=1.0`.
///
/// # Example
///
/// ```
/// use uds_netlist::generators::random::{layered, LayeredConfig};
/// use uds_netlist::levelize;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let nl = layered(&LayeredConfig::new("demo", 500, 20))?;
/// assert_eq!(nl.gate_count(), 500);
/// assert_eq!(levelize(&nl)?.depth, 20);
/// # Ok(())
/// # }
/// ```
pub fn layered(config: &LayeredConfig) -> Result<Netlist, GenerateError> {
    validate_config(config)?;
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut b = NetlistBuilder::named(config.name.clone());

    let pis: Vec<NetId> = (0..config.primary_inputs)
        .map(|i| b.input(format!("pi{i}")))
        .collect();

    // Distribute gates over levels 1..=depth, at least one per level.
    let depth = config.depth as usize;
    let mut gates_at = vec![1usize; depth + 1];
    gates_at[0] = 0;
    for _ in 0..(config.gates - depth) {
        let level = rng.gen_range(1..=depth);
        gates_at[level] += 1;
    }

    // nets_by_level[l] = nets whose exact level is l.
    let mut nets_by_level: Vec<Vec<NetId>> = vec![Vec::new(); depth + 1];
    nets_by_level[0] = pis.clone();
    // Nets that nothing reads yet, kept per level for consumption bias.
    let mut unread: Vec<Vec<NetId>> = vec![Vec::new(); depth + 1];
    unread[0] = pis;

    let mark_read = |unread: &mut Vec<Vec<NetId>>, level: usize, net: NetId| {
        if let Some(pos) = unread[level].iter().position(|&n| n == net) {
            unread[level].swap_remove(pos);
        }
    };

    for level in 1..=depth {
        for g in 0..gates_at[level] {
            let from_prev = pick(&nets_by_level[level - 1], &mut rng);
            mark_read(&mut unread, level - 1, from_prev);

            let roll: f64 = rng.gen();
            let (kind, fanin) = if roll < config.inverter_fraction {
                let kind = if rng.gen_bool(0.7) {
                    GateKind::Not
                } else {
                    GateKind::Buf
                };
                (kind, 1)
            } else {
                let kind = if rng.gen_bool(config.xor_fraction) {
                    *pick_slice(&[GateKind::Xor, GateKind::Xnor], &mut rng)
                } else {
                    *pick_slice(
                        &[GateKind::And, GateKind::Nand, GateKind::Or, GateKind::Nor],
                        &mut rng,
                    )
                };
                // Fan-in biased toward 2 (roughly geometric).
                let mut fanin = 2;
                while fanin < config.max_fanin && rng.gen_bool(0.3) {
                    fanin += 1;
                }
                (kind, fanin)
            };

            let mut inputs = vec![from_prev];
            for _ in 1..fanin {
                let src_level = if rng.gen_bool(config.locality) {
                    level - 1
                } else {
                    let lowest = level - config.leak_window.min(level);
                    rng.gen_range(lowest..level)
                };
                // Prefer an unread net at that level so logic gets used.
                let net = if !unread[src_level].is_empty() && rng.gen_bool(0.75) {
                    let idx = rng.gen_range(0..unread[src_level].len());
                    unread[src_level][idx]
                } else {
                    pick(&nets_by_level[src_level], &mut rng)
                };
                mark_read(&mut unread, src_level, net);
                inputs.push(net);
            }

            let out = b
                .gate(kind, &inputs, format!("n{level}_{g}"))
                .map_err(|e| GenerateError::new(e.to_string()))?;
            nets_by_level[level].push(out);
            unread[level].push(out);
        }
    }

    // Primary outputs: every unread net (no dead logic), plus random
    // high-level nets until the requested minimum is met.
    let mut outputs: Vec<NetId> = Vec::new();
    let mut chosen = std::collections::HashSet::new();
    for level in (1..=depth).rev() {
        // Unread primary inputs (level 0) stay plain inputs; promoting
        // them to outputs would create trivially constant "logic".
        for &net in &unread[level] {
            if chosen.insert(net) {
                outputs.push(net);
            }
        }
    }
    // Top up from the highest levels downward, randomizing within a level.
    'top_up: for level in (1..=depth).rev() {
        if outputs.len() >= config.primary_outputs {
            break;
        }
        let mut candidates: Vec<NetId> = nets_by_level[level]
            .iter()
            .copied()
            .filter(|n| !chosen.contains(n))
            .collect();
        while !candidates.is_empty() {
            let idx = rng.gen_range(0..candidates.len());
            let net = candidates.swap_remove(idx);
            chosen.insert(net);
            outputs.push(net);
            if outputs.len() >= config.primary_outputs {
                break 'top_up;
            }
        }
    }
    for net in outputs {
        b.output(net);
    }

    b.finish().map_err(|e| GenerateError::new(e.to_string()))
}

fn validate_config(config: &LayeredConfig) -> Result<(), GenerateError> {
    if config.primary_inputs == 0 {
        return Err(GenerateError::new("need at least one primary input"));
    }
    if config.depth == 0 {
        return Err(GenerateError::new("depth must be at least 1"));
    }
    if config.gates < config.depth as usize {
        return Err(GenerateError::new(format!(
            "gates ({}) must be at least depth ({})",
            config.gates, config.depth
        )));
    }
    if config.max_fanin < 2 {
        return Err(GenerateError::new("max_fanin must be at least 2"));
    }
    if config.leak_window == 0 {
        return Err(GenerateError::new("leak_window must be at least 1"));
    }
    for (name, value) in [
        ("xor_fraction", config.xor_fraction),
        ("inverter_fraction", config.inverter_fraction),
        ("locality", config.locality),
    ] {
        if !(0.0..=1.0).contains(&value) {
            return Err(GenerateError::new(format!(
                "{name} must be within 0.0..=1.0 (got {value})"
            )));
        }
    }
    Ok(())
}

fn pick(nets: &[NetId], rng: &mut StdRng) -> NetId {
    nets[rng.gen_range(0..nets.len())]
}

fn pick_slice<'a, T>(items: &'a [T], rng: &mut StdRng) -> &'a T {
    &items[rng.gen_range(0..items.len())]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{levelize, validate};

    #[test]
    fn hits_exact_gate_count_and_depth() {
        for (gates, depth) in [(50usize, 10u32), (500, 25), (1000, 40), (40, 40)] {
            let nl = layered(&LayeredConfig::new("t", gates, depth)).unwrap();
            assert_eq!(nl.gate_count(), gates);
            assert_eq!(levelize(&nl).unwrap().depth, depth);
        }
    }

    #[test]
    fn passes_strict_validation() {
        let nl = layered(&LayeredConfig::new("t", 300, 20)).unwrap();
        validate::check_lenient(&nl, validate::Mode::Combinational).unwrap();
        // No dead logic: every non-PI net is read or is an output.
        for net in nl.net_ids() {
            let read = !nl.fanout(net).is_empty() || nl.is_primary_output(net);
            assert!(read || nl.is_primary_input(net), "dead net {net}");
        }
    }

    #[test]
    fn is_deterministic() {
        let config = LayeredConfig::new("t", 200, 15);
        let a = layered(&config).unwrap();
        let b = layered(&config).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let mut config = LayeredConfig::new("t", 200, 15);
        let a = layered(&config).unwrap();
        config.seed = 99;
        let b = layered(&config).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn meets_minimum_primary_outputs() {
        let mut config = LayeredConfig::new("t", 400, 12);
        config.primary_outputs = 30;
        let nl = layered(&config).unwrap();
        assert!(
            nl.primary_outputs().len() >= 30,
            "{}",
            nl.primary_outputs().len()
        );
    }

    #[test]
    fn locality_shrinks_level_spread() {
        // With locality 1.0 every input comes from the previous level, so
        // level - minlevel should be 0 for all gates with fanin satisfied
        // from level-1 nets.
        let mut config = LayeredConfig::new("tight", 300, 20);
        config.locality = 1.0;
        let tight = layered(&config).unwrap();
        let lt = levelize(&tight).unwrap();
        let spread_tight: u32 = tight
            .net_ids()
            .map(|n| lt.net_level[n] - lt.net_minlevel[n])
            .sum();

        let mut config = LayeredConfig::new("loose", 300, 20);
        config.locality = 0.0;
        config.seed = 0x5eed;
        let loose = layered(&config).unwrap();
        let ll = levelize(&loose).unwrap();
        let spread_loose: u32 = loose
            .net_ids()
            .map(|n| ll.net_level[n] - ll.net_minlevel[n])
            .sum();
        assert!(
            spread_tight < spread_loose,
            "tight {spread_tight} !< loose {spread_loose}"
        );
    }

    #[test]
    fn bad_configs_are_rejected() {
        let base = LayeredConfig::new("t", 100, 10);
        let mut c = base.clone();
        c.primary_inputs = 0;
        assert!(layered(&c).is_err());
        let mut c = base.clone();
        c.depth = 0;
        assert!(layered(&c).is_err());
        let mut c = base.clone();
        c.gates = 5;
        assert!(layered(&c).is_err());
        let mut c = base.clone();
        c.max_fanin = 1;
        assert!(layered(&c).is_err());
        let mut c = base.clone();
        c.locality = 1.5;
        assert!(layered(&c).is_err());
    }
}
