//! Magnitude/equality comparators.

use crate::{BuildError, GateKind, NetId, Netlist, NetlistBuilder};

use super::GenerateError;

/// Builds an `n`-bit comparator.
///
/// Ports: inputs `a0..`, `b0..`; outputs `eq` (a == b), `gt` (a > b),
/// `lt` (a < b). Implemented as a ripple from the most significant bit:
/// `gt_i = gt_{i+1} | (eq_{i+1} & a_i & !b_i)`, which yields a linear-depth
/// structure with reconvergent fanout at every stage.
///
/// # Errors
///
/// Returns [`GenerateError`] if `n == 0`.
///
/// # Example
///
/// ```
/// use uds_netlist::generators::comparator::comparator;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let nl = comparator(8)?;
/// assert_eq!(nl.primary_outputs().len(), 3);
/// # Ok(())
/// # }
/// ```
pub fn comparator(n: usize) -> Result<Netlist, GenerateError> {
    if n == 0 {
        return Err(GenerateError::new("comparator width must be at least 1"));
    }
    let mut b = NetlistBuilder::named(format!("cmp{n}"));
    let a: Vec<NetId> = (0..n).map(|i| b.input(format!("a{i}"))).collect();
    let bb: Vec<NetId> = (0..n).map(|i| b.input(format!("b{i}"))).collect();

    let result = (|| -> Result<(NetId, NetId, NetId), BuildError> {
        // Per-bit equality and strict dominance.
        let mut eq_so_far: Option<NetId> = None;
        let mut gt_so_far: Option<NetId> = None;
        let mut lt_so_far: Option<NetId> = None;
        for i in (0..n).rev() {
            let eq_bit = b.gate_fresh(GateKind::Xnor, &[a[i], bb[i]])?;
            let nb = b.gate_fresh(GateKind::Not, &[bb[i]])?;
            let na = b.gate_fresh(GateKind::Not, &[a[i]])?;
            let gt_bit = b.gate_fresh(GateKind::And, &[a[i], nb])?;
            let lt_bit = b.gate_fresh(GateKind::And, &[na, bb[i]])?;
            match (eq_so_far, gt_so_far, lt_so_far) {
                (None, None, None) => {
                    eq_so_far = Some(eq_bit);
                    gt_so_far = Some(gt_bit);
                    lt_so_far = Some(lt_bit);
                }
                (Some(eq), Some(gt), Some(lt)) => {
                    let gt_here = b.gate_fresh(GateKind::And, &[eq, gt_bit])?;
                    let lt_here = b.gate_fresh(GateKind::And, &[eq, lt_bit])?;
                    gt_so_far = Some(b.gate_fresh(GateKind::Or, &[gt, gt_here])?);
                    lt_so_far = Some(b.gate_fresh(GateKind::Or, &[lt, lt_here])?);
                    eq_so_far = Some(b.gate_fresh(GateKind::And, &[eq, eq_bit])?);
                }
                _ => unreachable!("all three accumulators advance together"),
            }
        }
        Ok((
            eq_so_far.expect("n >= 1"),
            gt_so_far.expect("n >= 1"),
            lt_so_far.expect("n >= 1"),
        ))
    })();
    let (eq, gt, lt) = result.map_err(|e| GenerateError::new(e.to_string()))?;

    // Name the outputs by buffering onto named nets.
    let build_named = |b: &mut NetlistBuilder,
                       src: NetId,
                       name: &str|
     -> Result<NetId, BuildError> { b.gate(GateKind::Buf, &[src], name) };
    let eq = build_named(&mut b, eq, "eq").map_err(|e| GenerateError::new(e.to_string()))?;
    let gt = build_named(&mut b, gt, "gt").map_err(|e| GenerateError::new(e.to_string()))?;
    let lt = build_named(&mut b, lt, "lt").map_err(|e| GenerateError::new(e.to_string()))?;
    b.output(eq);
    b.output(gt);
    b.output(lt);
    b.finish().map_err(|e| GenerateError::new(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_oracle::eval_oracle;
    use crate::validate;
    use std::collections::HashMap;

    #[test]
    fn compares_exhaustively_4bit() {
        let nl = comparator(4).unwrap();
        validate::check(&nl, validate::Mode::Combinational).unwrap();
        let names: Vec<String> = (0..4)
            .flat_map(|i| [format!("a{i}"), format!("b{i}")])
            .collect();
        for a in 0u32..16 {
            for b in 0u32..16 {
                let mut inputs = HashMap::new();
                for i in 0..4 {
                    inputs.insert(names[2 * i].as_str(), a >> i & 1 != 0);
                    inputs.insert(names[2 * i + 1].as_str(), b >> i & 1 != 0);
                }
                let out = eval_oracle(&nl, &inputs);
                assert_eq!(out["eq"], a == b, "{a} vs {b}");
                assert_eq!(out["gt"], a > b, "{a} vs {b}");
                assert_eq!(out["lt"], a < b, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn single_bit_comparator() {
        let nl = comparator(1).unwrap();
        let mut inputs = HashMap::new();
        inputs.insert("a0", true);
        inputs.insert("b0", false);
        let out = eval_oracle(&nl, &inputs);
        assert!(out["gt"] && !out["eq"] && !out["lt"]);
    }

    #[test]
    fn zero_width_is_rejected() {
        assert!(comparator(0).is_err());
    }
}
