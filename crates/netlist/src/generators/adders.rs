//! Adder structures.

use crate::{BuildError, GateKind, NetId, NetlistBuilder};

use super::GenerateError;

/// How exclusive-OR functions are realized inside generated arithmetic.
///
/// The paper's deepest benchmark (c6288) is built from NOR gates only,
/// which roughly doubles its logic depth compared to a library with a
/// native XOR cell. The style knob lets generated arithmetic reproduce
/// either depth profile.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum AdderStyle {
    /// Use native `XOR` gates (shallow: one level per XOR).
    #[default]
    NativeXor,
    /// Expand every XOR into AND/NOT/OR (three levels per XOR), as a
    /// NOR-only library would. Deep, like ISCAS-85 c6288.
    ExpandedXor,
}

/// Emits `a XOR b` in the requested style; returns the output net.
pub(crate) fn xor2(
    b: &mut NetlistBuilder,
    style: AdderStyle,
    a: NetId,
    bb: NetId,
) -> Result<NetId, BuildError> {
    match style {
        AdderStyle::NativeXor => b.gate_fresh(GateKind::Xor, &[a, bb]),
        AdderStyle::ExpandedXor => {
            let na = b.gate_fresh(GateKind::Not, &[a])?;
            let nb = b.gate_fresh(GateKind::Not, &[bb])?;
            let left = b.gate_fresh(GateKind::And, &[a, nb])?;
            let right = b.gate_fresh(GateKind::And, &[na, bb])?;
            b.gate_fresh(GateKind::Or, &[left, right])
        }
    }
}

/// A full adder: returns `(sum, carry_out)`.
pub(crate) fn full_adder(
    b: &mut NetlistBuilder,
    style: AdderStyle,
    a: NetId,
    bb: NetId,
    cin: NetId,
) -> Result<(NetId, NetId), BuildError> {
    let axb = xor2(b, style, a, bb)?;
    let sum = xor2(b, style, axb, cin)?;
    let and1 = b.gate_fresh(GateKind::And, &[a, bb])?;
    let and2 = b.gate_fresh(GateKind::And, &[axb, cin])?;
    let carry = b.gate_fresh(GateKind::Or, &[and1, and2])?;
    Ok((sum, carry))
}

/// A half adder: returns `(sum, carry_out)`.
pub(crate) fn half_adder(
    b: &mut NetlistBuilder,
    style: AdderStyle,
    a: NetId,
    bb: NetId,
) -> Result<(NetId, NetId), BuildError> {
    let sum = xor2(b, style, a, bb)?;
    let carry = b.gate_fresh(GateKind::And, &[a, bb])?;
    Ok((sum, carry))
}

/// Builds an `n`-bit ripple-carry adder.
///
/// Ports: inputs `a0..`, `b0..`, `cin`; outputs `s0..` and `cout`. The
/// carry chain makes the depth grow linearly with `n`, which produces the
/// long thin PC-sets that stress the unit-delay code generators.
///
/// # Errors
///
/// Returns [`GenerateError`] if `n == 0`.
///
/// # Example
///
/// ```
/// use uds_netlist::generators::adders::{ripple_carry_adder, AdderStyle};
/// use uds_netlist::levelize;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let nl = ripple_carry_adder(8, AdderStyle::NativeXor)?;
/// assert_eq!(nl.primary_inputs().len(), 17); // a, b, cin
/// assert_eq!(nl.primary_outputs().len(), 9); // s, cout
/// assert!(levelize(&nl)?.depth >= 8);
/// # Ok(())
/// # }
/// ```
pub fn ripple_carry_adder(n: usize, style: AdderStyle) -> Result<crate::Netlist, GenerateError> {
    if n == 0 {
        return Err(GenerateError::new("adder width must be at least 1"));
    }
    let mut b = NetlistBuilder::named(format!("rca{n}"));
    let a: Vec<NetId> = (0..n).map(|i| b.input(format!("a{i}"))).collect();
    let bb: Vec<NetId> = (0..n).map(|i| b.input(format!("b{i}"))).collect();
    let mut carry = b.input("cin");
    for i in 0..n {
        let (sum, cout) = full_adder(&mut b, style, a[i], bb[i], carry)
            .map_err(|e| GenerateError::new(e.to_string()))?;
        b.output(sum);
        carry = cout;
    }
    b.output(carry);
    b.finish().map_err(|e| GenerateError::new(e.to_string()))
}

/// Builds an `n`-bit carry-lookahead adder (4-bit lookahead blocks,
/// rippling between blocks).
///
/// Shallower than [`ripple_carry_adder`] for the same width; useful to
/// contrast PC-set sizes between adder architectures.
///
/// # Errors
///
/// Returns [`GenerateError`] if `n == 0`.
pub fn carry_lookahead_adder(n: usize) -> Result<crate::Netlist, GenerateError> {
    if n == 0 {
        return Err(GenerateError::new("adder width must be at least 1"));
    }
    let mut b = NetlistBuilder::named(format!("cla{n}"));
    let a: Vec<NetId> = (0..n).map(|i| b.input(format!("a{i}"))).collect();
    let bb: Vec<NetId> = (0..n).map(|i| b.input(format!("b{i}"))).collect();
    let cin = b.input("cin");

    let build = |b: &mut NetlistBuilder| -> Result<(), BuildError> {
        // Per-bit propagate/generate.
        let mut p = Vec::with_capacity(n);
        let mut g = Vec::with_capacity(n);
        for i in 0..n {
            p.push(b.gate_fresh(GateKind::Xor, &[a[i], bb[i]])?);
            g.push(b.gate_fresh(GateKind::And, &[a[i], bb[i]])?);
        }
        // Lookahead carries in blocks of 4: c[i+1] = g[i] | p[i]c[i],
        // flattened inside a block so the AND terms all source the block
        // carry-in directly.
        let mut carries = Vec::with_capacity(n + 1);
        carries.push(cin);
        let mut block_cin = cin;
        for block_start in (0..n).step_by(4) {
            let block_end = (block_start + 4).min(n);
            for i in block_start..block_end {
                // c_{i+1} = g_i | p_i g_{i-1} | ... | p_i..p_bs * block_cin
                let mut terms: Vec<NetId> = vec![g[i]];
                for k in (block_start..i).rev() {
                    let mut ands: Vec<NetId> = p[k + 1..=i].to_vec();
                    ands.push(g[k]);
                    terms.push(b.gate_fresh(GateKind::And, &ands)?);
                }
                let mut ands: Vec<NetId> = p[block_start..=i].to_vec();
                ands.push(block_cin);
                terms.push(b.gate_fresh(GateKind::And, &ands)?);
                let carry = if terms.len() == 1 {
                    terms[0]
                } else {
                    b.gate_fresh(GateKind::Or, &terms)?
                };
                carries.push(carry);
            }
            block_cin = carries[block_end];
        }
        for i in 0..n {
            let sum = b.gate_fresh(GateKind::Xor, &[p[i], carries[i]])?;
            b.output(sum);
        }
        b.output(carries[n]);
        Ok(())
    };
    build(&mut b).map_err(|e| GenerateError::new(e.to_string()))?;
    b.finish().map_err(|e| GenerateError::new(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_oracle::eval_oracle;
    use crate::{levelize, validate};

    fn add_via(nl: &crate::Netlist, n: usize, a: u64, b: u64, cin: bool) -> u64 {
        let mut inputs = std::collections::HashMap::new();
        let names: Vec<String> = (0..n)
            .flat_map(|i| [format!("a{i}"), format!("b{i}")])
            .collect();
        for i in 0..n {
            inputs.insert(names[2 * i].as_str(), a >> i & 1 != 0);
            inputs.insert(names[2 * i + 1].as_str(), b >> i & 1 != 0);
        }
        inputs.insert("cin", cin);
        let out = eval_oracle(nl, &inputs);
        let mut result = 0u64;
        // Sum bits are the first n primary outputs in declaration order,
        // carry-out is the last.
        for (i, &po) in nl.primary_outputs().iter().enumerate() {
            if out[nl.net_name(po)] {
                result |= 1 << i;
            }
        }
        result
    }

    #[test]
    fn ripple_adder_adds() {
        for style in [AdderStyle::NativeXor, AdderStyle::ExpandedXor] {
            let nl = ripple_carry_adder(6, style).unwrap();
            validate::check(&nl, validate::Mode::Combinational).unwrap();
            for (a, b, cin) in [
                (0u64, 0u64, false),
                (63, 1, false),
                (21, 42, true),
                (63, 63, true),
            ] {
                let got = add_via(&nl, 6, a, b, cin);
                assert_eq!(got, a + b + cin as u64, "{a}+{b}+{cin} ({style:?})");
            }
        }
    }

    #[test]
    fn lookahead_adder_adds() {
        let nl = carry_lookahead_adder(9).unwrap();
        validate::check(&nl, validate::Mode::Combinational).unwrap();
        for (a, b, cin) in [
            (0u64, 0, false),
            (511, 1, false),
            (300, 211, true),
            (511, 511, true),
        ] {
            let got = add_via(&nl, 9, a, b, cin);
            assert_eq!(got, a + b + cin as u64, "{a}+{b}+{cin}");
        }
    }

    #[test]
    fn lookahead_is_shallower_than_ripple() {
        let rca = ripple_carry_adder(16, AdderStyle::NativeXor).unwrap();
        let cla = carry_lookahead_adder(16).unwrap();
        let d_rca = levelize(&rca).unwrap().depth;
        let d_cla = levelize(&cla).unwrap().depth;
        assert!(d_cla < d_rca, "cla depth {d_cla} !< rca depth {d_rca}");
    }

    #[test]
    fn expanded_xor_is_deeper() {
        let shallow = ripple_carry_adder(8, AdderStyle::NativeXor).unwrap();
        let deep = ripple_carry_adder(8, AdderStyle::ExpandedXor).unwrap();
        assert!(levelize(&deep).unwrap().depth > levelize(&shallow).unwrap().depth);
    }

    #[test]
    fn zero_width_is_rejected() {
        assert!(ripple_carry_adder(0, AdderStyle::NativeXor).is_err());
        assert!(carry_lookahead_adder(0).is_err());
    }
}
