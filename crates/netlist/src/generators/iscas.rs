//! The ISCAS-85-like benchmark suite.
//!
//! The paper's evaluation (§5) runs on the ten ISCAS-85 circuits
//! c432..c7552. Those netlists cannot be redistributed here, so this
//! module builds *calibrated synthetic stand-ins*: for each circuit, a
//! deterministic synthetic netlist matched on the statistics that drive
//! every number in the paper's tables —
//!
//! * **gate count** (Fig. 21's unoptimized shift column equals one shift
//!   per gate, so the paper pins these exactly);
//! * **logic depth** (Fig. 20's "Levels" column, which fixes the
//!   bit-field word count: 1 word for c432–c1355, 2 words for
//!   c1908–c7552, 4 for c6288);
//! * primary input / output counts (published with the benchmark set);
//! * structural flavor: c6288's stand-in is a real 16×16 array
//!   multiplier (the same function and architecture as c6288),
//!   c499/c1355 are XOR-heavy like the original error-correcting
//!   circuits, and c2670 uses high input locality to reproduce its
//!   "unusually small PC-sets" anomaly that the paper calls out.
//!
//! See DESIGN.md §4 for the substitution rationale.

use crate::generators::adders::AdderStyle;
use crate::generators::multiplier::array_multiplier;
use crate::generators::random::{layered, LayeredConfig};
use crate::{bench_format, Netlist};

/// The ten ISCAS-85 benchmark circuits of the paper's §5.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
#[allow(missing_docs)]
pub enum Iscas85 {
    C432,
    C499,
    C880,
    C1355,
    C1908,
    C2670,
    C3540,
    C5315,
    C6288,
    C7552,
}

/// The published statistics a stand-in is calibrated against.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CircuitTarget {
    /// Primary inputs.
    pub primary_inputs: usize,
    /// Primary outputs.
    pub primary_outputs: usize,
    /// Gate count (from the paper's Fig. 21 unoptimized-shifts column).
    pub gates: usize,
    /// Logic depth (the paper's Fig. 20 "Levels" minus one — levels count
    /// time points `0..=depth`).
    pub depth: u32,
    /// 32-bit words per parallel-technique bit-field implied by `depth`.
    pub words: usize,
}

impl Iscas85 {
    /// All ten circuits, smallest to largest.
    pub const ALL: [Iscas85; 10] = [
        Iscas85::C432,
        Iscas85::C499,
        Iscas85::C880,
        Iscas85::C1355,
        Iscas85::C1908,
        Iscas85::C2670,
        Iscas85::C3540,
        Iscas85::C5315,
        Iscas85::C6288,
        Iscas85::C7552,
    ];

    /// The benchmark's conventional name.
    pub fn name(self) -> &'static str {
        match self {
            Iscas85::C432 => "c432",
            Iscas85::C499 => "c499",
            Iscas85::C880 => "c880",
            Iscas85::C1355 => "c1355",
            Iscas85::C1908 => "c1908",
            Iscas85::C2670 => "c2670",
            Iscas85::C3540 => "c3540",
            Iscas85::C5315 => "c5315",
            Iscas85::C6288 => "c6288",
            Iscas85::C7552 => "c7552",
        }
    }

    /// Published calibration target for this circuit.
    ///
    /// `depth` for [`Iscas85::C6288`] is the paper's 124 (125 levels);
    /// its structural stand-in lands in the same 4-word band but not at
    /// the exact figure, since it is a real multiplier rather than a
    /// tuned random graph.
    pub fn target(self) -> CircuitTarget {
        let (primary_inputs, primary_outputs, gates, depth) = match self {
            Iscas85::C432 => (36, 7, 160, 17),
            Iscas85::C499 => (41, 32, 202, 11),
            Iscas85::C880 => (60, 26, 383, 24),
            Iscas85::C1355 => (41, 32, 546, 24),
            Iscas85::C1908 => (33, 25, 880, 40),
            Iscas85::C2670 => (233, 140, 1269, 32),
            Iscas85::C3540 => (50, 22, 1669, 47),
            Iscas85::C5315 => (178, 123, 2307, 49),
            Iscas85::C6288 => (32, 32, 2416, 124),
            Iscas85::C7552 => (207, 108, 3513, 43),
        };
        CircuitTarget {
            primary_inputs,
            primary_outputs,
            gates,
            depth,
            words: (depth as usize + 1).div_ceil(32),
        }
    }

    /// Builds the synthetic stand-in netlist. Deterministic: repeated
    /// calls return identical netlists.
    pub fn build(self) -> Netlist {
        if self == Iscas85::C6288 {
            // The real thing: a 16×16 array multiplier with expanded XORs
            // (c6288 is NOR-only, hence its great depth).
            let mut nl = array_multiplier(16, 16, AdderStyle::ExpandedXor)
                .expect("fixed multiplier parameters are valid");
            nl.rename("c6288");
            return nl;
        }
        let t = self.target();
        // Gate mixes approximate the arithmetic content of the original
        // circuits (c499/c1355 are XOR-dominated ECC logic; c1908, c3540,
        // c5315 and c7552 contain substantial adder/parity logic), which
        // also calibrates unit-delay switching activity — the quantity the
        // interpreted baseline's runtime is proportional to.
        let (xor_fraction, locality, leak_window, max_fanin, seed) = match self {
            Iscas85::C432 => (0.15, 0.35, usize::MAX, 9, 0x432),
            Iscas85::C499 => (0.65, 0.45, usize::MAX, 5, 0x499),
            Iscas85::C880 => (0.20, 0.40, usize::MAX, 4, 0x880),
            Iscas85::C1355 => (0.60, 0.35, usize::MAX, 2, 0x1355),
            Iscas85::C1908 => (0.35, 0.40, usize::MAX, 4, 0x1908),
            // High locality + a short leak window => small PC-sets (the
            // paper's c2670 anomaly).
            Iscas85::C2670 => (0.15, 0.80, 2, 4, 0x2670),
            Iscas85::C3540 => (0.30, 0.35, usize::MAX, 5, 0x3540),
            Iscas85::C5315 => (0.30, 0.40, usize::MAX, 5, 0x5315),
            Iscas85::C6288 => unreachable!("handled above"),
            Iscas85::C7552 => (0.30, 0.45, usize::MAX, 4, 0x7552),
        };
        let config = LayeredConfig {
            name: self.name().to_owned(),
            primary_inputs: t.primary_inputs,
            primary_outputs: t.primary_outputs,
            gates: t.gates,
            depth: t.depth,
            xor_fraction,
            inverter_fraction: 0.08,
            locality,
            max_fanin,
            leak_window,
            seed,
        };
        layered(&config).expect("suite configurations are valid by construction")
    }
}

impl std::fmt::Display for Iscas85 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The genuine ISCAS-85 c17 circuit (embedded verbatim; it is six NAND
/// gates). Useful as a tiny smoke-test workload.
pub fn c17() -> Netlist {
    bench_format::parse(bench_format::C17, "c17").expect("embedded c17 is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{levelize, stats::CircuitStats, validate};

    #[test]
    fn every_standin_matches_its_calibration() {
        for circuit in Iscas85::ALL {
            let nl = circuit.build();
            let t = circuit.target();
            let levels = levelize(&nl).unwrap();
            validate::check_lenient(&nl, validate::Mode::Combinational).unwrap();

            if circuit == Iscas85::C6288 {
                // Structural stand-in: exact function, band-matched depth.
                let points = levels.depth as usize + 1;
                assert_eq!(points.div_ceil(32), 4, "c6288 depth {}", levels.depth);
                assert!(
                    (1800..=3400).contains(&nl.gate_count()),
                    "c6288 gates {}",
                    nl.gate_count()
                );
            } else {
                assert_eq!(nl.gate_count(), t.gates, "{circuit} gates");
                assert_eq!(levels.depth, t.depth, "{circuit} depth");
                assert_eq!(
                    nl.primary_inputs().len(),
                    t.primary_inputs,
                    "{circuit} inputs"
                );
                assert!(
                    nl.primary_outputs().len() >= t.primary_outputs,
                    "{circuit} outputs {} < {}",
                    nl.primary_outputs().len(),
                    t.primary_outputs
                );
            }

            let stats = CircuitStats::compute(&nl).unwrap();
            assert_eq!(stats.bitfield_words(), t.words, "{circuit} words");
        }
    }

    #[test]
    fn c2670_has_small_level_spread() {
        // The paper: "the anomaly ... for circuit c2670 is due to the
        // unusually small size of the PC-sets". PC-set size is bounded by
        // level - minlevel + 1, so the stand-in must have a much smaller
        // average spread than its neighbors.
        let spread = |c: Iscas85| {
            let nl = c.build();
            let lv = levelize(&nl).unwrap();
            let total: u64 = nl
                .net_ids()
                .map(|n| u64::from(lv.net_level[n] - lv.net_minlevel[n]))
                .sum();
            total as f64 / nl.net_count() as f64
        };
        assert!(spread(Iscas85::C2670) * 3.0 < spread(Iscas85::C3540));
    }

    #[test]
    fn builds_are_deterministic() {
        for circuit in [Iscas85::C432, Iscas85::C6288] {
            assert_eq!(circuit.build(), circuit.build());
        }
    }

    #[test]
    fn c17_is_the_real_one() {
        let nl = c17();
        assert_eq!(nl.gate_count(), 6);
        assert_eq!(levelize(&nl).unwrap().depth, 3);
    }

    #[test]
    fn names_and_display_agree() {
        for circuit in Iscas85::ALL {
            assert_eq!(circuit.to_string(), circuit.name());
            assert_eq!(circuit.build().name(), circuit.name());
        }
    }
}
