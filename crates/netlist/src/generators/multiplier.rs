//! Array multiplier, the structural stand-in for ISCAS-85 c6288.
//!
//! c6288 is a 16×16 carry-save array multiplier built from NOR gates; its
//! 125 logic levels dominate the paper's tables (4-word bit-fields). The
//! generator below builds the same architecture: an AND-gate partial
//! product matrix feeding a carry-save adder array, with a final ripple
//! vector-merge adder. With [`AdderStyle::ExpandedXor`] the depth lands in
//! the same 4-word band as the original.

use crate::{BuildError, GateKind, NetId, Netlist, NetlistBuilder};

use super::adders::{full_adder, half_adder, AdderStyle};
use super::GenerateError;

/// Builds an `n × m`-bit array multiplier (`a` is `n` bits, `b` is `m`
/// bits, product is `n + m` bits).
///
/// Ports: inputs `a0..a{n-1}`, `b0..b{m-1}`; outputs `p0..p{n+m-1}`.
///
/// # Errors
///
/// Returns [`GenerateError`] if either width is zero.
///
/// # Example
///
/// ```
/// use uds_netlist::generators::multiplier::array_multiplier;
/// use uds_netlist::generators::adders::AdderStyle;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let nl = array_multiplier(4, 4, AdderStyle::NativeXor)?;
/// assert_eq!(nl.primary_outputs().len(), 8);
/// # Ok(())
/// # }
/// ```
pub fn array_multiplier(n: usize, m: usize, style: AdderStyle) -> Result<Netlist, GenerateError> {
    if n == 0 || m == 0 {
        return Err(GenerateError::new("multiplier widths must be at least 1"));
    }
    let mut b = NetlistBuilder::named(format!("mul{n}x{m}"));
    let a: Vec<NetId> = (0..n).map(|i| b.input(format!("a{i}"))).collect();
    let bb: Vec<NetId> = (0..m).map(|j| b.input(format!("b{j}"))).collect();

    let result = build(&mut b, &a, &bb, style);
    let product = result.map_err(|e| GenerateError::new(e.to_string()))?;
    for p in product {
        b.output(p);
    }
    b.finish().map_err(|e| GenerateError::new(e.to_string()))
}

fn build(
    b: &mut NetlistBuilder,
    a: &[NetId],
    bb: &[NetId],
    style: AdderStyle,
) -> Result<Vec<NetId>, BuildError> {
    let n = a.len();
    let m = bb.len();

    // Partial product matrix: pp[j][i] = a_i AND b_j.
    let mut pp = Vec::with_capacity(m);
    for &bj in bb {
        let row: Result<Vec<NetId>, BuildError> = a
            .iter()
            .map(|&ai| b.gate_fresh(GateKind::And, &[ai, bj]))
            .collect();
        pp.push(row?);
    }

    let mut product = Vec::with_capacity(n + m);

    if m == 1 {
        // Product is the single partial-product row; the top bit
        // (weight n) is always zero.
        let mut bits = pp.remove(0);
        bits.push(b.gate_fresh(GateKind::Const0, &[])?);
        return Ok(bits);
    }

    // Carry-save rows. `sum[i]` / `carry[i]` hold the running row outputs
    // for weight `row + i` after processing row `row`.
    let mut sum: Vec<NetId> = pp[0].clone();
    let mut carry: Vec<Option<NetId>> = vec![None; n];

    for pp_row in pp.iter().skip(1) {
        product.push(sum[0]);
        let mut new_sum = Vec::with_capacity(n);
        let mut new_carry = Vec::with_capacity(n);
        for i in 0..n {
            // Operands at weight row + i: this row's partial product,
            // the previous row's sum at one weight higher, and the
            // previous row's carry at the same weight.
            let p = pp_row[i];
            let s_above = if i + 1 < n { Some(sum[i + 1]) } else { None };
            let c_above = carry[i];
            let (s, c) = match (s_above, c_above) {
                (Some(x), Some(y)) => {
                    // Full adder on (p, x, y).
                    full_adder(b, style, p, x, y)?
                }
                (Some(x), None) | (None, Some(x)) => half_adder(b, style, p, x)?,
                (None, None) => {
                    // Nothing to add; pass the partial product through.
                    let zero_c = None;
                    new_sum.push(p);
                    new_carry.push(zero_c);
                    continue;
                }
            };
            new_sum.push(s);
            new_carry.push(Some(c));
        }
        sum = new_sum;
        carry = new_carry;
    }

    // Vector-merge: ripple-add the remaining sums and carries.
    // Weight m - 1 + i holds sum[i]; weight m + i holds carry[i].
    product.push(sum[0]);
    let mut cin: Option<NetId> = None;
    for i in 1..n {
        let s = sum[i];
        let c_below = carry[i - 1];
        let (bit, cout) = match (c_below, cin) {
            (Some(x), Some(y)) => {
                let (bit, cout) = full_adder(b, style, s, x, y)?;
                (bit, Some(cout))
            }
            (Some(x), None) | (None, Some(x)) => {
                let (bit, cout) = half_adder(b, style, s, x)?;
                (bit, Some(cout))
            }
            (None, None) => (s, None),
        };
        product.push(bit);
        cin = cout;
    }
    // Top bit (weight n + m - 1): the last carry of the final row plus the
    // ripple carry. The product of an n×m multiplier always fits in
    // n + m bits, so these two can never both be 1 and a plain OR is the
    // correct (and carry-free) combination.
    match (carry[n - 1], cin) {
        (Some(x), Some(y)) => {
            let bit = b.gate_fresh(GateKind::Or, &[x, y])?;
            product.push(bit);
        }
        (Some(x), None) | (None, Some(x)) => product.push(x),
        (None, None) => {
            let zero = b.gate_fresh(GateKind::Const0, &[])?;
            product.push(zero);
        }
    }

    debug_assert_eq!(product.len(), n + m);
    Ok(product)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_oracle::eval_oracle;
    use crate::{levelize, validate};

    fn multiply_via(nl: &Netlist, n: usize, m: usize, a: u64, b: u64) -> u64 {
        let mut inputs = std::collections::HashMap::new();
        let names: Vec<String> = (0..n)
            .map(|i| format!("a{i}"))
            .chain((0..m).map(|j| format!("b{j}")))
            .collect();
        for (i, name) in names.iter().take(n).enumerate() {
            inputs.insert(name.as_str(), a >> i & 1 != 0);
        }
        for j in 0..m {
            inputs.insert(names[n + j].as_str(), b >> j & 1 != 0);
        }
        let out = eval_oracle(nl, &inputs);
        let mut result = 0u64;
        for (i, &po) in nl.primary_outputs().iter().enumerate() {
            if out[nl.net_name(po)] {
                result |= 1 << i;
            }
        }
        result
    }

    #[test]
    fn multiplies_4x4_exhaustively() {
        let nl = array_multiplier(4, 4, AdderStyle::NativeXor).unwrap();
        validate::check_lenient(&nl, validate::Mode::Combinational).unwrap();
        for a in 0u64..16 {
            for b in 0u64..16 {
                assert_eq!(multiply_via(&nl, 4, 4, a, b), a * b, "{a}*{b}");
            }
        }
    }

    #[test]
    fn multiplies_rectangular() {
        let nl = array_multiplier(5, 3, AdderStyle::ExpandedXor).unwrap();
        for (a, b) in [(31u64, 7u64), (0, 5), (19, 6), (31, 0)] {
            assert_eq!(multiply_via(&nl, 5, 3, a, b), a * b, "{a}*{b}");
        }
    }

    #[test]
    fn multiplies_by_one_bit() {
        let nl = array_multiplier(4, 1, AdderStyle::NativeXor).unwrap();
        for a in 0u64..16 {
            assert_eq!(multiply_via(&nl, 4, 1, a, 1), a);
            assert_eq!(multiply_via(&nl, 4, 1, a, 0), 0);
        }
    }

    #[test]
    fn sixteen_by_sixteen_matches_c6288_scale() {
        let nl = array_multiplier(16, 16, AdderStyle::ExpandedXor).unwrap();
        let levels = levelize(&nl).unwrap();
        // c6288: 2406 gates, 125 levels => 4-word bit-fields. The stand-in
        // must land in the same 4-word band (97..=127 levels).
        assert!(
            (97..=127).contains(&levels.depth),
            "depth {} outside the 4-word band",
            levels.depth
        );
        assert!(
            (1800..=3400).contains(&nl.gate_count()),
            "gate count {} far from c6288's 2406",
            nl.gate_count()
        );
        // Spot-check functionality at full width.
        assert_eq!(
            multiply_via(&nl, 16, 16, 0xFFFF, 0xFFFF),
            0xFFFFu64 * 0xFFFF
        );
        assert_eq!(multiply_via(&nl, 16, 16, 54321, 1234), 54321 * 1234);
    }

    #[test]
    fn zero_width_is_rejected() {
        assert!(array_multiplier(0, 4, AdderStyle::NativeXor).is_err());
        assert!(array_multiplier(4, 0, AdderStyle::NativeXor).is_err());
    }
}
