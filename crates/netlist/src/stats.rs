//! Circuit statistics, used to calibrate the synthetic ISCAS-85 suite and
//! to report the size/depth columns of the paper's tables.

use std::collections::BTreeMap;
use std::fmt;

use crate::{levelize, GateKind, LevelizeError, Netlist};

/// Aggregate statistics of a combinational netlist.
#[derive(Clone, PartialEq, Debug)]
pub struct CircuitStats {
    /// Circuit name.
    pub name: String,
    /// Number of primary inputs.
    pub primary_inputs: usize,
    /// Number of primary outputs.
    pub primary_outputs: usize,
    /// Number of gates.
    pub gates: usize,
    /// Number of nets.
    pub nets: usize,
    /// Gate counts by kind.
    pub by_kind: BTreeMap<GateKind, usize>,
    /// Circuit depth (maximum net level); the paper's "levels" column is
    /// `depth` here (number of gate levels on the longest path).
    pub depth: u32,
    /// Mean gate fan-in.
    pub avg_fanin: f64,
    /// Mean net fan-out (over driven nets and primary inputs).
    pub avg_fanout: f64,
    /// Number of gates at each level `1..=depth` (index 0 counts level-0
    /// constant generators, normally zero).
    pub gates_per_level: Vec<usize>,
}

impl CircuitStats {
    /// Computes statistics for a combinational netlist.
    ///
    /// # Errors
    ///
    /// Propagates [`LevelizeError`] for cyclic or sequential netlists.
    pub fn compute(netlist: &Netlist) -> Result<CircuitStats, LevelizeError> {
        let levels = levelize(netlist)?;
        let mut by_kind = BTreeMap::new();
        for gate in netlist.gates() {
            *by_kind.entry(gate.kind).or_insert(0usize) += 1;
        }
        let gates = netlist.gate_count();
        let pins = netlist.pin_count();
        let fanout_total: usize = netlist.net_ids().map(|n| netlist.fanout(n).len()).sum();
        let sources = netlist
            .net_ids()
            .filter(|&n| netlist.driver(n).is_some() || netlist.is_primary_input(n))
            .count();
        let mut gates_per_level = vec![0usize; levels.depth as usize + 1];
        for gid in netlist.gate_ids() {
            gates_per_level[levels.gate_level[gid] as usize] += 1;
        }
        Ok(CircuitStats {
            name: netlist.name().to_owned(),
            primary_inputs: netlist.primary_inputs().len(),
            primary_outputs: netlist.primary_outputs().len(),
            gates,
            nets: netlist.net_count(),
            by_kind,
            depth: levels.depth,
            avg_fanin: if gates == 0 {
                0.0
            } else {
                pins as f64 / gates as f64
            },
            avg_fanout: if sources == 0 {
                0.0
            } else {
                fanout_total as f64 / sources as f64
            },
            gates_per_level,
        })
    }

    /// Number of 32-bit words a parallel-technique bit-field needs for this
    /// circuit (`ceil((depth + 1) / 32)`), the parenthesized figure in the
    /// paper's Fig. 20 "Levels" column.
    pub fn bitfield_words(&self) -> usize {
        (self.depth as usize + 1).div_ceil(32)
    }
}

impl fmt::Display for CircuitStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}: {} gates, {} nets, {} PI, {} PO, depth {} ({} word bit-fields)",
            self.name,
            self.gates,
            self.nets,
            self.primary_inputs,
            self.primary_outputs,
            self.depth,
            self.bitfield_words()
        )?;
        write!(f, "  kinds:")?;
        for (kind, count) in &self.by_kind {
            write!(f, " {kind}={count}")?;
        }
        write!(
            f,
            "\n  avg fan-in {:.2}, avg fan-out {:.2}",
            self.avg_fanin, self.avg_fanout
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GateKind, NetlistBuilder};

    fn sample() -> Netlist {
        let mut b = NetlistBuilder::named("sample");
        let a = b.input("A");
        let c = b.input("C");
        let d = b.gate(GateKind::And, &[a, c], "D").unwrap();
        let e = b.gate(GateKind::Not, &[d], "E").unwrap();
        b.output(e);
        b.finish().unwrap()
    }

    #[test]
    fn counts_are_correct() {
        let stats = CircuitStats::compute(&sample()).unwrap();
        assert_eq!(stats.gates, 2);
        assert_eq!(stats.nets, 4);
        assert_eq!(stats.primary_inputs, 2);
        assert_eq!(stats.primary_outputs, 1);
        assert_eq!(stats.depth, 2);
        assert_eq!(stats.by_kind[&GateKind::And], 1);
        assert_eq!(stats.by_kind[&GateKind::Not], 1);
        assert_eq!(stats.gates_per_level, vec![0, 1, 1]);
        assert!((stats.avg_fanin - 1.5).abs() < 1e-9);
    }

    #[test]
    fn bitfield_words_rounds_up() {
        let mut stats = CircuitStats::compute(&sample()).unwrap();
        stats.depth = 31; // 32 time points -> 1 word
        assert_eq!(stats.bitfield_words(), 1);
        stats.depth = 32; // 33 time points -> 2 words
        assert_eq!(stats.bitfield_words(), 2);
        stats.depth = 124; // 125 time points -> 4 words (c6288)
        assert_eq!(stats.bitfield_words(), 4);
    }

    #[test]
    fn display_mentions_name_and_depth() {
        let text = CircuitStats::compute(&sample()).unwrap().to_string();
        assert!(text.contains("sample"));
        assert!(text.contains("depth 2"));
    }
}
