//! Typed arena handles for nets and gates.

use std::fmt;

/// Handle to a net (a named signal) inside a [`crate::Netlist`].
///
/// `NetId`s are dense indices: every net of a netlist with `n` nets has an
/// id in `0..n`, so they can index plain vectors. The `From`/`Index`
/// conversions below make that convenient without giving up the type
/// distinction from [`GateId`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NetId(pub(crate) u32);

/// Handle to a gate inside a [`crate::Netlist`].
///
/// Dense indices, like [`NetId`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GateId(pub(crate) u32);

macro_rules! impl_id {
    ($name:ident, $letter:literal) => {
        impl $name {
            /// Creates an id from a raw index.
            ///
            /// Intended for code that has already obtained a valid dense
            /// index (e.g. by iterating `0..netlist.net_count()`).
            #[inline]
            pub fn from_index(index: usize) -> Self {
                $name(u32::try_from(index).expect("id index exceeds u32 range"))
            }

            /// Returns the raw dense index.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($letter, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($letter, "{}"), self.0)
            }
        }

        impl From<$name> for usize {
            #[inline]
            fn from(id: $name) -> usize {
                id.index()
            }
        }

        impl<T> std::ops::Index<$name> for Vec<T> {
            type Output = T;
            #[inline]
            fn index(&self, id: $name) -> &T {
                &self[id.index()]
            }
        }

        impl<T> std::ops::IndexMut<$name> for Vec<T> {
            #[inline]
            fn index_mut(&mut self, id: $name) -> &mut T {
                &mut self[id.index()]
            }
        }

        impl<T> std::ops::Index<$name> for [T] {
            type Output = T;
            #[inline]
            fn index(&self, id: $name) -> &T {
                &self[id.index()]
            }
        }

        impl<T> std::ops::IndexMut<$name> for [T] {
            #[inline]
            fn index_mut(&mut self, id: $name) -> &mut T {
                &mut self[id.index()]
            }
        }
    };
}

impl_id!(NetId, "n");
impl_id!(GateId, "g");

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_index_vectors() {
        // The Vec indexing impl is exactly what is under test.
        #[allow(clippy::useless_vec)]
        let v = vec![10, 20, 30];
        assert_eq!(v[NetId::from_index(1)], 20);
        assert_eq!(v[GateId::from_index(2)], 30);
    }

    #[test]
    fn ids_round_trip_indices() {
        for i in [0usize, 1, 77, 1 << 20] {
            assert_eq!(NetId::from_index(i).index(), i);
            assert_eq!(GateId::from_index(i).index(), i);
        }
    }

    #[test]
    fn debug_formats_distinguish_kinds() {
        assert_eq!(format!("{:?}", NetId::from_index(4)), "n4");
        assert_eq!(format!("{:?}", GateId::from_index(4)), "g4");
    }

    #[test]
    fn ids_are_ordered_by_index() {
        assert!(NetId::from_index(1) < NetId::from_index(2));
        assert!(GateId::from_index(0) < GateId::from_index(9));
    }
}
