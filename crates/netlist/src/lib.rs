//! Gate-level netlist substrate for unit-delay compiled simulation.
//!
//! This crate provides everything the simulation techniques of
//! Maurer's *"Two New Techniques for Unit-Delay Compiled Simulation"*
//! (DAC 1990) need from a circuit representation:
//!
//! * a compact arena-based [`Netlist`] with typed [`NetId`]/[`GateId`]
//!   handles and a [`NetlistBuilder`] for programmatic construction;
//! * the ISCAS-85 `.bench` text format ([`bench_format`]), reader and
//!   writer, including `DFF` for sequential circuits;
//! * [`levelize`]: the levelization / minlevel worklist algorithm that both
//!   the PC-set method and the parallel technique are built on;
//! * structural [`generators`] (adders, an array multiplier, parity and mux
//!   trees, decoders, comparators, an ALU slice, random layered DAGs) and an
//!   ISCAS-85-like benchmark suite calibrated to the statistics the paper
//!   reports;
//! * [`sequential`]: cutting synchronous circuits at their flip-flops so the
//!   acyclic techniques apply (§1 of the paper);
//! * [`validate`]: structural checks with typed errors, and [`stats`] for
//!   circuit statistics.
//!
//! # Example
//!
//! Build the two-gate network of the paper's Fig. 1 and levelize it:
//!
//! ```
//! use uds_netlist::{NetlistBuilder, GateKind, levelize};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = NetlistBuilder::new();
//! let a = b.input("A");
//! let bn = b.input("B");
//! let c = b.input("C");
//! let d = b.gate(GateKind::And, &[a, bn], "D")?;
//! let e = b.gate(GateKind::And, &[c, d], "E")?;
//! b.output(e);
//! let netlist = b.finish()?;
//!
//! let levels = levelize(&netlist)?;
//! assert_eq!(levels.net_level[d], 1);
//! assert_eq!(levels.net_level[e], 2);
//! assert_eq!(levels.depth, 2);
//! # Ok(())
//! # }
//! ```

pub mod bench_format;
mod builder;
pub mod cone;
mod gate;
pub mod generators;
mod ids;
pub mod levelize;
pub mod levelprof;
pub mod limits;
mod netlist;
pub mod probe;
pub mod sequential;
pub mod stats;
#[cfg(test)]
pub(crate) mod test_oracle;
pub mod validate;

pub use builder::{BuildError, NetlistBuilder};
pub use gate::{GateKind, Logic3, ParseGateKindError};
pub use ids::{GateId, NetId};
pub use levelize::{levelize, LevelizeError, Levels};
pub use levelprof::{
    static_profile, LevelCost, LevelProfile, LevelSegment, LevelTimer, SegmentBuilder,
};
pub use limits::{LimitExceeded, Resource, ResourceLimits};
pub use netlist::{Gate, Netlist};
pub use probe::{NoopProbe, Probe, ProbeSpan};
