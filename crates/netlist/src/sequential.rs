//! Support for synchronous sequential circuits.
//!
//! The paper's techniques require acyclic circuits, but §1 notes they
//! "can be applied to a wide variety of synchronous sequential circuits by
//! requiring that any cycle in the network contain at least one flip-flop.
//! The circuit could then be broken at the flip-flops by treating the
//! flip-flop inputs as primary outputs and the outputs as primary inputs."
//! [`cut_flip_flops`] performs exactly that transformation and returns the
//! bookkeeping needed to run multi-cycle simulations on the cut circuit.

use std::fmt;

use crate::{GateKind, NetId, Netlist, NetlistBuilder};

/// One flip-flop that was cut out of a sequential netlist.
///
/// Both ids refer to nets of the *cut* (combinational) netlist, whose net
/// ids coincide with the original netlist's (the cut preserves net order).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct StateElement {
    /// The flip-flop's data input — a pseudo primary output of the cut
    /// circuit. Its value at the end of clock cycle `k` becomes `q`'s
    /// value during cycle `k + 1`.
    pub d: NetId,
    /// The flip-flop's output — a pseudo primary input of the cut circuit.
    pub q: NetId,
}

/// The result of cutting a sequential netlist at its flip-flops.
#[derive(Clone, PartialEq, Debug)]
pub struct CutCircuit {
    /// The acyclic combinational remainder. Flip-flop outputs are
    /// appended to the primary inputs, flip-flop inputs to the primary
    /// outputs.
    pub combinational: Netlist,
    /// One entry per cut flip-flop, in original gate order.
    pub state: Vec<StateElement>,
}

impl CutCircuit {
    /// Number of state bits (cut flip-flops).
    pub fn state_bits(&self) -> usize {
        self.state.len()
    }
}

/// Error returned by [`cut_flip_flops`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CutError {
    /// A flip-flop output net is also a declared primary input.
    DffDrivesPrimaryInput {
        /// The conflicting net.
        net: NetId,
    },
}

impl fmt::Display for CutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CutError::DffDrivesPrimaryInput { net } => {
                write!(f, "flip-flop drives declared primary input {net}")
            }
        }
    }
}

impl std::error::Error for CutError {}

/// Cuts every flip-flop out of `netlist`, turning each `Q` into a pseudo
/// primary input and each `D` into a pseudo primary output.
///
/// Net ids and names are preserved; gate ids are renumbered (flip-flops
/// disappear). Running the cut circuit for one input vector simulates one
/// clock cycle; feeding each [`StateElement::d`] final value back into
/// [`StateElement::q`] advances the state.
///
/// Calling this on a purely combinational netlist is allowed and returns
/// an identical netlist with an empty state list.
///
/// # Errors
///
/// Returns [`CutError::DffDrivesPrimaryInput`] if a flip-flop output is
/// also declared as a primary input (a malformed netlist).
///
/// # Example
///
/// ```
/// use uds_netlist::{NetlistBuilder, GateKind};
/// use uds_netlist::sequential::cut_flip_flops;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // A 1-bit toggle register: q' = q XOR en.
/// let mut b = NetlistBuilder::named("toggle");
/// let en = b.input("en");
/// let q = b.get_or_create_net("q");
/// let d = b.gate(GateKind::Xor, &[en, q], "d")?;
/// b.gate_onto(GateKind::Dff, &[d], q)?;
/// b.output(q);
/// let nl = b.finish()?;
///
/// let cut = cut_flip_flops(&nl)?;
/// assert_eq!(cut.state_bits(), 1);
/// assert!(!cut.combinational.is_sequential());
/// assert!(cut.combinational.primary_inputs().contains(&cut.state[0].q));
/// assert!(cut.combinational.primary_outputs().contains(&cut.state[0].d));
/// # Ok(())
/// # }
/// ```
pub fn cut_flip_flops(netlist: &Netlist) -> Result<CutCircuit, CutError> {
    let mut b = NetlistBuilder::named(netlist.name());

    // Recreate all nets in id order so ids are preserved.
    for net in netlist.net_ids() {
        b.get_or_create_net(netlist.net_name(net));
    }

    for &pi in netlist.primary_inputs() {
        b.declare_input(pi);
    }

    let mut state = Vec::new();
    for gate in netlist.gates() {
        if gate.kind == GateKind::Dff {
            let q = gate.output;
            if netlist.primary_inputs().contains(&q) {
                return Err(CutError::DffDrivesPrimaryInput { net: q });
            }
            state.push(StateElement {
                d: gate.inputs[0],
                q,
            });
            b.declare_input(q);
        } else {
            b.gate_onto(gate.kind, &gate.inputs, gate.output)
                .expect("cut preserves a well-formed gate");
        }
    }

    for &po in netlist.primary_outputs() {
        b.output(po);
    }
    for element in &state {
        b.output(element.d);
    }

    let combinational = b
        .finish()
        .expect("cut of a built netlist cannot fail to build");
    Ok(CutCircuit {
        combinational,
        state,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{levelize, GateKind, NetlistBuilder};

    fn toggle() -> Netlist {
        let mut b = NetlistBuilder::named("toggle");
        let en = b.input("en");
        let q = b.get_or_create_net("q");
        let d = b.gate(GateKind::Xor, &[en, q], "d").unwrap();
        b.gate_onto(GateKind::Dff, &[d], q).unwrap();
        b.output(q);
        b.finish().unwrap()
    }

    #[test]
    fn cut_removes_dffs_and_breaks_cycles() {
        let nl = toggle();
        assert!(nl.is_sequential());
        assert!(levelize(&nl).is_err());

        let cut = cut_flip_flops(&nl).unwrap();
        assert!(!cut.combinational.is_sequential());
        let levels = levelize(&cut.combinational).unwrap();
        assert_eq!(levels.depth, 1);
        assert_eq!(cut.state_bits(), 1);
    }

    #[test]
    fn net_names_and_ids_are_preserved() {
        let nl = toggle();
        let cut = cut_flip_flops(&nl).unwrap();
        assert_eq!(nl.net_count(), cut.combinational.net_count());
        for net in nl.net_ids() {
            assert_eq!(nl.net_name(net), cut.combinational.net_name(net));
        }
    }

    #[test]
    fn d_becomes_output_q_becomes_input() {
        let nl = toggle();
        let cut = cut_flip_flops(&nl).unwrap();
        let element = cut.state[0];
        assert_eq!(cut.combinational.net_name(element.d), "d");
        assert_eq!(cut.combinational.net_name(element.q), "q");
        assert!(cut.combinational.primary_inputs().contains(&element.q));
        assert!(cut.combinational.primary_outputs().contains(&element.d));
    }

    #[test]
    fn combinational_netlist_passes_through() {
        let mut b = NetlistBuilder::new();
        let a = b.input("A");
        let c = b.input("C");
        let d = b.gate(GateKind::And, &[a, c], "D").unwrap();
        b.output(d);
        let nl = b.finish().unwrap();
        let cut = cut_flip_flops(&nl).unwrap();
        assert_eq!(cut.state_bits(), 0);
        assert_eq!(cut.combinational, nl);
    }

    #[test]
    fn dff_driving_primary_input_is_rejected() {
        let mut b = NetlistBuilder::new();
        let a = b.input("A");
        // Malformed: PI net also driven by DFF. The builder allows it
        // (declare_input then gate_onto), validation would flag it; the
        // cutter must reject it explicitly.
        let pi = b.input("PI");
        let d = b.gate(GateKind::Buf, &[a], "D").unwrap();
        b.gate_onto(GateKind::Dff, &[d], pi).unwrap();
        b.output(pi);
        let nl = b.finish().unwrap();
        assert!(matches!(
            cut_flip_flops(&nl),
            Err(CutError::DffDrivesPrimaryInput { .. })
        ));
    }

    #[test]
    fn shift_register_cuts_to_parallel_buffers() {
        // d0 -> DFF -> q0 -> DFF -> q1
        let mut b = NetlistBuilder::named("shift2");
        let din = b.input("din");
        let q0 = b.get_or_create_net("q0");
        let q1 = b.get_or_create_net("q1");
        b.gate_onto(GateKind::Dff, &[din], q0).unwrap();
        b.gate_onto(GateKind::Dff, &[q0], q1).unwrap();
        b.output(q1);
        let nl = b.finish().unwrap();
        let cut = cut_flip_flops(&nl).unwrap();
        assert_eq!(cut.state_bits(), 2);
        assert_eq!(cut.combinational.gate_count(), 0);
        // All logic is in the feedback wiring now.
        let levels = levelize(&cut.combinational).unwrap();
        assert_eq!(levels.depth, 0);
    }
}
