//! Fan-in cone extraction: carve out the sub-netlist a set of outputs
//! actually depends on.
//!
//! Useful for debugging a single miscompared output, for shrinking
//! counterexamples, and for per-output analysis of the compiled
//! techniques (a cone is itself a valid circuit for every simulator in
//! the workspace).

use crate::{NetId, Netlist, NetlistBuilder};

/// The result of [`extract`]: the cone netlist plus id maps back into
/// the original.
#[derive(Clone, Debug)]
pub struct Cone {
    /// The extracted sub-netlist. Its primary inputs are the original
    /// primary inputs (and undriven nets) the cone reaches; its primary
    /// outputs are the requested roots, in request order.
    pub netlist: Netlist,
    /// For each cone net, the original net it mirrors.
    pub original_net: Vec<NetId>,
}

impl Cone {
    /// Maps an original net into the cone, if it is part of it.
    pub fn to_cone(&self, original: NetId) -> Option<NetId> {
        self.original_net
            .iter()
            .position(|&n| n == original)
            .map(NetId::from_index)
    }
}

/// Extracts the transitive fan-in cone of `roots`.
///
/// # Panics
///
/// Panics if a root id is out of range for `netlist`.
///
/// # Example
///
/// ```
/// use uds_netlist::{NetlistBuilder, GateKind, cone};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = NetlistBuilder::new();
/// let a = b.input("a");
/// let x = b.input("b");
/// let y = b.gate(GateKind::Not, &[a], "y")?;   // cone of y: a only
/// let z = b.gate(GateKind::And, &[a, x], "z")?;
/// b.output(y);
/// b.output(z);
/// let nl = b.finish()?;
///
/// let cone = cone::extract(&nl, &[y]);
/// assert_eq!(cone.netlist.gate_count(), 1);
/// assert_eq!(cone.netlist.primary_inputs().len(), 1);
/// # Ok(())
/// # }
/// ```
pub fn extract(netlist: &Netlist, roots: &[NetId]) -> Cone {
    assert!(
        roots.iter().all(|&n| n.index() < netlist.net_count()),
        "cone root out of range"
    );

    // Mark the transitive fan-in.
    let mut in_cone = vec![false; netlist.net_count()];
    let mut gate_in_cone = vec![false; netlist.gate_count()];
    let mut stack: Vec<NetId> = roots.to_vec();
    while let Some(net) = stack.pop() {
        if in_cone[net] {
            continue;
        }
        in_cone[net] = true;
        if let Some(gid) = netlist.driver(net) {
            gate_in_cone[gid.index()] = true;
            for &input in &netlist.gate(gid).inputs {
                stack.push(input);
            }
        }
    }

    // Rebuild, preserving relative net order (so levelized order is
    // preserved too).
    let mut b = NetlistBuilder::named(format!("{}_cone", netlist.name()));
    let mut original_net = Vec::new();
    let mut map = vec![None; netlist.net_count()];
    for net in netlist.net_ids() {
        if !in_cone[net] {
            continue;
        }
        let new_id = b.get_or_create_net(netlist.net_name(net));
        map[net.index()] = Some(new_id);
        original_net.push(net);
        if netlist.driver(net).is_none() {
            b.declare_input(new_id);
        }
    }
    for gid in netlist.gate_ids() {
        if !gate_in_cone[gid.index()] {
            continue;
        }
        let gate = netlist.gate(gid);
        let inputs: Vec<NetId> = gate
            .inputs
            .iter()
            .map(|&n| map[n.index()].expect("fan-in nets are in the cone"))
            .collect();
        let output = map[gate.output.index()].expect("driven net is in the cone");
        b.gate_onto(gate.kind, &inputs, output)
            .expect("cone gates mirror well-formed gates");
    }
    for &root in roots {
        b.output(map[root.index()].expect("roots are in the cone"));
    }
    let cone_netlist = b.finish().expect("cone of a built netlist builds");
    Cone {
        netlist: cone_netlist,
        original_net,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::iscas::{c17, Iscas85};
    use crate::test_oracle::eval_oracle;
    use crate::{levelize, validate, GateKind};

    #[test]
    fn cone_of_everything_is_the_whole_circuit() {
        let nl = c17();
        let cone = extract(&nl, nl.primary_outputs());
        assert_eq!(cone.netlist.gate_count(), nl.gate_count());
        assert_eq!(cone.netlist.net_count(), nl.net_count());
        validate::check(&cone.netlist, validate::Mode::Combinational).unwrap();
    }

    #[test]
    fn cone_preserves_function() {
        let nl = c17();
        let root = nl.primary_outputs()[0];
        let cone = extract(&nl, &[root]);
        let cone_root = cone.to_cone(root).unwrap();
        for pattern in 0u32..32 {
            let mut full_inputs = std::collections::HashMap::new();
            for (i, &pi) in nl.primary_inputs().iter().enumerate() {
                full_inputs.insert(nl.net_name(pi), pattern >> i & 1 != 0);
            }
            let full = eval_oracle(&nl, &full_inputs);
            // The cone shares input names; reuse the same assignment.
            let cone_inputs: std::collections::HashMap<&str, bool> = cone
                .netlist
                .primary_inputs()
                .iter()
                .map(|&pi| {
                    let name = cone.netlist.net_name(pi);
                    (name, full_inputs[name])
                })
                .collect();
            let cone_out = eval_oracle(&cone.netlist, &cone_inputs);
            assert_eq!(
                cone_out[cone.netlist.net_name(cone_root)],
                full[nl.net_name(root)],
                "pattern {pattern:05b}"
            );
        }
    }

    #[test]
    fn cone_is_smaller_for_single_outputs() {
        let nl = Iscas85::C880.build();
        let root = nl.primary_outputs()[0];
        let cone = extract(&nl, &[root]);
        assert!(cone.netlist.gate_count() < nl.gate_count());
        assert!(cone.netlist.gate_count() > 0);
        validate::check_lenient(&cone.netlist, validate::Mode::Combinational).unwrap();
        // Depth can only shrink.
        let full_depth = levelize(&nl).unwrap().depth;
        let cone_depth = levelize(&cone.netlist).unwrap().depth;
        assert!(cone_depth <= full_depth);
    }

    #[test]
    fn unrelated_logic_is_excluded() {
        let mut b = NetlistBuilder::new();
        let a = b.input("a");
        let other = b.input("other");
        let y = b.gate(GateKind::Not, &[a], "y").unwrap();
        let z = b.gate(GateKind::Not, &[other], "z").unwrap();
        b.output(y);
        b.output(z);
        let nl = b.finish().unwrap();
        let cone = extract(&nl, &[y]);
        assert_eq!(cone.netlist.gate_count(), 1);
        assert!(cone.netlist.find_net("other").is_none());
        assert!(cone.netlist.find_net("z").is_none());
        let _ = z;
    }

    #[test]
    fn duplicate_roots_collapse() {
        let nl = c17();
        let root = nl.primary_outputs()[0];
        let cone = extract(&nl, &[root, root]);
        assert_eq!(cone.netlist.primary_outputs().len(), 1);
    }
}
