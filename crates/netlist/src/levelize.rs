//! Levelization: the foundation of both compiled techniques.
//!
//! The paper bases everything on the well-known Levelized Compiled Code
//! levelization pass and its `minlevel` variant:
//!
//! * the **level** of a net is the length (in gates) of the *longest* path
//!   from the primary inputs — the latest time, in gate delays, at which
//!   the net may still change;
//! * the **minlevel** is the length of the *shortest* such path — the
//!   earliest time at which input changes can reach the net.
//!
//! Both are computed in one worklist pass, the paper's "count" algorithm
//! (§2 steps 1–6), which is a variation of topological sorting and
//! therefore also yields the gate evaluation order that every code
//! generator in this workspace uses.

use std::fmt;

use crate::{GateId, GateKind, NetId, Netlist};

/// Levelization results for a netlist.
///
/// All vectors are dense, indexed by [`NetId`] / [`GateId`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Levels {
    /// Longest-path level of each net. Level 0 nets are primary inputs,
    /// constant-gate outputs and undriven nets.
    pub net_level: Vec<u32>,
    /// Shortest-path level of each net.
    pub net_minlevel: Vec<u32>,
    /// Longest-path level of each gate (its output nets share it).
    pub gate_level: Vec<u32>,
    /// Shortest-path level of each gate.
    pub gate_minlevel: Vec<u32>,
    /// Gates in a valid evaluation order (ascending level).
    pub topo_gates: Vec<GateId>,
    /// The circuit depth: the maximum net level. The parallel technique
    /// allocates `depth + 1` bits per bit-field.
    pub depth: u32,
}

impl Levels {
    /// Number of distinct time points `0..=depth`, i.e. the bit-field
    /// width `n = depth + 1` of the paper's §3.
    pub fn time_points(&self) -> u32 {
        self.depth + 1
    }
}

/// Error returned by [`levelize`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum LevelizeError {
    /// The netlist contains a combinational cycle; the payload is the set
    /// of gates that could not be ordered.
    Cycle {
        /// Gates participating in (or downstream of) the cycle.
        unordered_gates: Vec<GateId>,
    },
    /// The netlist contains flip-flops; cut them first with
    /// [`crate::sequential::cut_flip_flops`].
    Sequential {
        /// The first flip-flop encountered.
        gate: GateId,
    },
}

impl fmt::Display for LevelizeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LevelizeError::Cycle { unordered_gates } => write!(
                f,
                "combinational cycle: {} gate(s) could not be levelized",
                unordered_gates.len()
            ),
            LevelizeError::Sequential { gate } => {
                write!(
                    f,
                    "netlist is sequential (flip-flop at {gate}); cut it first"
                )
            }
        }
    }
}

impl std::error::Error for LevelizeError {}

/// Levelizes an acyclic combinational netlist.
///
/// Runs the paper's generalized count algorithm once, producing levels,
/// minlevels and a topological gate order in `O(nets + pins)`.
///
/// Gates with no inputs (constant generators) and undriven nets are
/// assigned level 0, matching the paper's treatment of constant signals.
///
/// # Errors
///
/// * [`LevelizeError::Sequential`] if any gate is a [`GateKind::Dff`];
/// * [`LevelizeError::Cycle`] if the combinational graph is cyclic.
///
/// # Example
///
/// ```
/// use uds_netlist::{NetlistBuilder, GateKind, levelize};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // The gate of the paper's Fig. 2: inputs at minlevels 2, 3, 4.
/// let mut b = NetlistBuilder::new();
/// let i0 = b.input("i0");
/// let mut chain2 = i0;
/// for step in 0..2 { chain2 = b.gate(GateKind::Buf, &[chain2], format!("a{step}"))?; }
/// let mut chain3 = i0;
/// for step in 0..3 { chain3 = b.gate(GateKind::Buf, &[chain3], format!("b{step}"))?; }
/// let mut chain4 = i0;
/// for step in 0..4 { chain4 = b.gate(GateKind::Buf, &[chain4], format!("c{step}"))?; }
/// let out = b.gate(GateKind::And, &[chain2, chain3, chain4], "out")?;
/// b.output(out);
/// let nl = b.finish()?;
/// let levels = levelize(&nl)?;
/// assert_eq!(levels.net_minlevel[out], 3);
/// assert_eq!(levels.net_level[out], 5);
/// # Ok(())
/// # }
/// ```
pub fn levelize(netlist: &Netlist) -> Result<Levels, LevelizeError> {
    for gid in netlist.gate_ids() {
        if netlist.gate(gid).kind == GateKind::Dff {
            return Err(LevelizeError::Sequential { gate: gid });
        }
    }

    let nets = netlist.net_count();
    let gates = netlist.gate_count();

    let mut net_level = vec![0u32; nets];
    let mut net_minlevel = vec![0u32; nets];
    let mut gate_level = vec![0u32; gates];
    let mut gate_minlevel = vec![0u32; gates];

    // Step 1: counts. For a gate, the number of input pins (with
    // multiplicity); for a net, the number of driving gates (0 or 1 in the
    // single-driver model).
    let mut gate_count: Vec<usize> = netlist.gates().iter().map(|g| g.inputs.len()).collect();

    let mut topo_gates = Vec::with_capacity(gates);
    // Step 2: all undriven nets (primary inputs, dangling) are sources.
    let mut net_queue: Vec<NetId> = netlist
        .net_ids()
        .filter(|&n| netlist.driver(n).is_none())
        .collect();
    // Zero-input gates (constant generators) are immediately ready.
    let mut gate_queue: Vec<GateId> = (0..gates)
        .map(GateId::from_index)
        .filter(|&g| gate_count[g.index()] == 0)
        .collect();

    let mut processed_gates = 0usize;
    loop {
        if let Some(net) = net_queue.pop() {
            // Step 4: a net takes its driving gate's level; sources stay 0.
            if let Some(driver) = netlist.driver(net) {
                net_level[net] = gate_level[driver];
                net_minlevel[net] = gate_minlevel[driver];
            }
            for &gate in netlist.fanout(net) {
                let pins = netlist
                    .gate(gate)
                    .inputs
                    .iter()
                    .filter(|&&input| input == net)
                    .count();
                let count = &mut gate_count[gate.index()];
                debug_assert!(*count >= pins);
                *count -= pins;
                if *count == 0 {
                    gate_queue.push(gate);
                }
            }
            continue;
        }
        if let Some(gate) = gate_queue.pop() {
            // Step 5: max+1 for level, min+1 for minlevel; constant
            // generators (no inputs) stay at level 0 like other sources.
            let inputs = &netlist.gate(gate).inputs;
            if inputs.is_empty() {
                gate_level[gate] = 0;
                gate_minlevel[gate] = 0;
            } else {
                gate_level[gate] = inputs.iter().map(|&n| net_level[n]).max().unwrap_or(0) + 1;
                gate_minlevel[gate] =
                    inputs.iter().map(|&n| net_minlevel[n]).min().unwrap_or(0) + 1;
            }
            topo_gates.push(gate);
            processed_gates += 1;
            net_queue.push(netlist.gate(gate).output);
            continue;
        }
        break;
    }

    if processed_gates != gates {
        let unordered_gates = (0..gates)
            .map(GateId::from_index)
            .filter(|&g| gate_count[g.index()] != 0)
            .collect();
        return Err(LevelizeError::Cycle { unordered_gates });
    }

    let depth = net_level.iter().copied().max().unwrap_or(0);
    Ok(Levels {
        net_level,
        net_minlevel,
        gate_level,
        gate_minlevel,
        topo_gates,
        depth,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NetlistBuilder;

    /// The paper's Fig. 1: `D = A & B; E = C & D;`.
    fn fig1() -> (Netlist, NetId, NetId) {
        let mut b = NetlistBuilder::new();
        let a = b.input("A");
        let bb = b.input("B");
        let c = b.input("C");
        let d = b.gate(GateKind::And, &[a, bb], "D").unwrap();
        let e = b.gate(GateKind::And, &[c, d], "E").unwrap();
        b.output(e);
        (b.finish().unwrap(), d, e)
    }

    #[test]
    fn fig1_levels() {
        let (nl, d, e) = fig1();
        let lv = levelize(&nl).unwrap();
        assert_eq!(lv.net_level[d], 1);
        assert_eq!(lv.net_level[e], 2);
        assert_eq!(lv.net_minlevel[d], 1);
        // E's shortest path comes through C directly.
        assert_eq!(lv.net_minlevel[e], 1);
        assert_eq!(lv.depth, 2);
        assert_eq!(lv.time_points(), 3);
    }

    #[test]
    fn topo_order_respects_dependencies() {
        let (nl, d, e) = fig1();
        let lv = levelize(&nl).unwrap();
        let pos_d = lv
            .topo_gates
            .iter()
            .position(|&g| nl.gate(g).output == d)
            .unwrap();
        let pos_e = lv
            .topo_gates
            .iter()
            .position(|&g| nl.gate(g).output == e)
            .unwrap();
        assert!(pos_d < pos_e);
        assert_eq!(lv.topo_gates.len(), nl.gate_count());
    }

    #[test]
    fn primary_inputs_are_level_zero() {
        let (nl, _, _) = fig1();
        let lv = levelize(&nl).unwrap();
        for &pi in nl.primary_inputs() {
            assert_eq!(lv.net_level[pi], 0);
            assert_eq!(lv.net_minlevel[pi], 0);
        }
    }

    #[test]
    fn constant_gates_are_level_zero() {
        let mut b = NetlistBuilder::new();
        let a = b.input("A");
        let k = b.gate(GateKind::Const1, &[], "K").unwrap();
        let o = b.gate(GateKind::And, &[a, k], "O").unwrap();
        b.output(o);
        let nl = b.finish().unwrap();
        let lv = levelize(&nl).unwrap();
        assert_eq!(lv.net_level[k], 0);
        assert_eq!(lv.net_minlevel[k], 0);
        assert_eq!(lv.net_level[o], 1);
    }

    #[test]
    fn repeated_pin_is_counted_with_multiplicity() {
        // Paper §2 step 4d note: a net on two pins decrements the count by 2.
        let mut b = NetlistBuilder::new();
        let a = b.input("A");
        let d = b.gate(GateKind::Xor, &[a, a], "D").unwrap();
        b.output(d);
        let nl = b.finish().unwrap();
        let lv = levelize(&nl).unwrap();
        assert_eq!(lv.net_level[d], 1);
    }

    #[test]
    fn cycle_is_detected() {
        // x = AND(a, y); y = NOT(x) — a combinational loop.
        let mut b = NetlistBuilder::new();
        let a = b.input("A");
        let x = b.fresh_net();
        let y = b.fresh_net();
        b.gate_onto(GateKind::And, &[a, y], x).unwrap();
        b.gate_onto(GateKind::Not, &[x], y).unwrap();
        b.output(y);
        let nl = b.finish().unwrap();
        match levelize(&nl) {
            Err(LevelizeError::Cycle { unordered_gates }) => {
                assert_eq!(unordered_gates.len(), 2);
            }
            other => panic!("expected cycle error, got {other:?}"),
        }
    }

    #[test]
    fn sequential_netlist_is_rejected() {
        let mut b = NetlistBuilder::new();
        let a = b.input("A");
        let q = b.gate(GateKind::Dff, &[a], "Q").unwrap();
        b.output(q);
        let nl = b.finish().unwrap();
        assert!(matches!(
            levelize(&nl),
            Err(LevelizeError::Sequential { .. })
        ));
    }

    #[test]
    fn deep_chain_has_expected_depth() {
        let mut b = NetlistBuilder::new();
        let mut net = b.input("A");
        for step in 0..100 {
            net = b.gate(GateKind::Not, &[net], format!("n{step}")).unwrap();
        }
        b.output(net);
        let nl = b.finish().unwrap();
        let lv = levelize(&nl).unwrap();
        assert_eq!(lv.depth, 100);
        assert_eq!(lv.net_minlevel[net], 100);
    }

    #[test]
    fn empty_netlist_levelizes() {
        let nl = NetlistBuilder::new().finish().unwrap();
        let lv = levelize(&nl).unwrap();
        assert_eq!(lv.depth, 0);
        assert!(lv.topo_gates.is_empty());
    }
}
