//! Test-only reference evaluator, independent of every simulator crate.

use std::collections::HashMap;

use crate::{levelize, Netlist};

/// Evaluates a combinational netlist by direct topological-order
/// interpretation, returning the value of every primary output by name.
///
/// # Panics
///
/// Panics on cyclic/sequential netlists and on missing input names — this
/// is a test oracle, not a public API.
pub(crate) fn eval_oracle(nl: &Netlist, inputs: &HashMap<&str, bool>) -> HashMap<String, bool> {
    let levels = levelize(nl).unwrap();
    let mut value = vec![false; nl.net_count()];
    for &pi in nl.primary_inputs() {
        value[pi] = *inputs
            .get(nl.net_name(pi))
            .unwrap_or_else(|| panic!("missing input {}", nl.net_name(pi)));
    }
    for &gid in &levels.topo_gates {
        let gate = nl.gate(gid);
        let bits: Vec<bool> = gate.inputs.iter().map(|&i| value[i]).collect();
        value[gate.output] = gate.kind.eval_bits(&bits);
    }
    nl.primary_outputs()
        .iter()
        .map(|&po| (nl.net_name(po).to_owned(), value[po]))
        .collect()
}
