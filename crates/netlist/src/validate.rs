//! Structural validation with typed diagnostics.
//!
//! The compiled-simulation code generators assume a well-formed acyclic
//! netlist. [`check`] verifies that assumption up front and reports every
//! problem it finds, so that malformed input (e.g. a hand-written `.bench`
//! file) produces a clear error instead of a panic deep inside a compiler.

use std::fmt;

use crate::{levelize, GateId, GateKind, LevelizeError, NetId, Netlist};

/// One structural problem found in a netlist.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Issue {
    /// A gate has an input count outside its kind's arity.
    BadArity {
        /// The offending gate.
        gate: GateId,
        /// Its kind.
        kind: GateKind,
        /// The number of inputs it has.
        got: usize,
    },
    /// A net is read by some gate (or is a primary output) but has no
    /// driver and is not a primary input.
    UndrivenNet {
        /// The floating net.
        net: NetId,
    },
    /// A net drives nothing and is not a primary output (dead logic).
    DanglingNet {
        /// The unused net.
        net: NetId,
    },
    /// A primary input is also driven by a gate.
    DrivenPrimaryInput {
        /// The doubly-sourced net.
        net: NetId,
    },
    /// The combinational part of the netlist contains a cycle.
    Cycle {
        /// Gates that could not be ordered.
        gates: Vec<GateId>,
    },
    /// The netlist contains flip-flops (only an issue when validating in
    /// [`Mode::Combinational`]).
    Sequential {
        /// The first flip-flop.
        gate: GateId,
    },
}

impl fmt::Display for Issue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Issue::BadArity { gate, kind, got } => {
                write!(f, "gate {gate} of kind {kind} has {got} inputs")
            }
            Issue::UndrivenNet { net } => write!(f, "net {net} is read but never driven"),
            Issue::DanglingNet { net } => write!(f, "net {net} drives nothing"),
            Issue::DrivenPrimaryInput { net } => {
                write!(f, "primary input {net} is also driven by a gate")
            }
            Issue::Cycle { gates } => {
                write!(f, "combinational cycle involving {} gate(s)", gates.len())
            }
            Issue::Sequential { gate } => write!(f, "flip-flop {gate} in combinational context"),
        }
    }
}

/// Error carrying every issue found by [`check`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ValidateError {
    /// All problems, in discovery order. Never empty.
    pub issues: Vec<Issue>,
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "netlist validation failed with {} issue(s):",
            self.issues.len()
        )?;
        for issue in &self.issues {
            write!(f, "\n  - {issue}")?;
        }
        Ok(())
    }
}

impl std::error::Error for ValidateError {}

/// What kind of netlist is expected.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Mode {
    /// Purely combinational: flip-flops are an error. This is what every
    /// code generator in the workspace requires.
    #[default]
    Combinational,
    /// Flip-flops allowed (cycles through them are fine); use before
    /// [`crate::sequential::cut_flip_flops`].
    Sequential,
}

/// Checks a netlist for structural problems.
///
/// Dangling nets are reported as issues but many realistic flows tolerate
/// them; use [`check_lenient`] to ignore them.
///
/// # Errors
///
/// Returns a [`ValidateError`] listing every discovered [`Issue`].
///
/// # Example
///
/// ```
/// use uds_netlist::{NetlistBuilder, GateKind, validate};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = NetlistBuilder::new();
/// let a = b.input("A");
/// let c = b.input("C");
/// let d = b.gate(GateKind::And, &[a, c], "D")?;
/// b.output(d);
/// let nl = b.finish()?;
/// validate::check(&nl, validate::Mode::Combinational)?;
/// # Ok(())
/// # }
/// ```
pub fn check(netlist: &Netlist, mode: Mode) -> Result<(), ValidateError> {
    run(netlist, mode, true)
}

/// Like [`check`] but does not report dangling (unused) nets.
///
/// # Errors
///
/// Returns a [`ValidateError`] listing every discovered [`Issue`].
pub fn check_lenient(netlist: &Netlist, mode: Mode) -> Result<(), ValidateError> {
    run(netlist, mode, false)
}

fn run(netlist: &Netlist, mode: Mode, report_dangling: bool) -> Result<(), ValidateError> {
    let mut issues = Vec::new();

    for gid in netlist.gate_ids() {
        let gate = netlist.gate(gid);
        if !gate.kind.accepts_inputs(gate.inputs.len()) {
            issues.push(Issue::BadArity {
                gate: gid,
                kind: gate.kind,
                got: gate.inputs.len(),
            });
        }
        if mode == Mode::Combinational && gate.kind == GateKind::Dff {
            issues.push(Issue::Sequential { gate: gid });
        }
    }

    for net in netlist.net_ids() {
        let driven = netlist.driver(net).is_some();
        let is_pi = netlist.primary_inputs().contains(&net);
        let read = !netlist.fanout(net).is_empty() || netlist.is_primary_output(net);
        if driven && is_pi {
            issues.push(Issue::DrivenPrimaryInput { net });
        }
        if !driven && !is_pi && read {
            issues.push(Issue::UndrivenNet { net });
        }
        if report_dangling && !read && !is_pi {
            issues.push(Issue::DanglingNet { net });
        }
    }

    // Cycle check on combinational netlists only; levelize also rejects
    // DFFs, which we have already reported above.
    if mode == Mode::Combinational && !netlist.is_sequential() {
        if let Err(LevelizeError::Cycle { unordered_gates }) = levelize(netlist) {
            issues.push(Issue::Cycle {
                gates: unordered_gates,
            });
        }
    }

    if issues.is_empty() {
        Ok(())
    } else {
        Err(ValidateError { issues })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NetlistBuilder;

    #[test]
    fn clean_netlist_passes() {
        let mut b = NetlistBuilder::new();
        let a = b.input("A");
        let c = b.input("C");
        let d = b.gate(GateKind::And, &[a, c], "D").unwrap();
        b.output(d);
        let nl = b.finish().unwrap();
        assert!(check(&nl, Mode::Combinational).is_ok());
    }

    #[test]
    fn undriven_net_is_reported() {
        let mut b = NetlistBuilder::new();
        let a = b.input("A");
        let ghost = b.fresh_net();
        let d = b.gate(GateKind::And, &[a, ghost], "D").unwrap();
        b.output(d);
        let nl = b.finish().unwrap();
        let err = check(&nl, Mode::Combinational).unwrap_err();
        assert!(err
            .issues
            .iter()
            .any(|i| matches!(i, Issue::UndrivenNet { net } if *net == ghost)));
    }

    #[test]
    fn dangling_net_reported_only_in_strict_mode() {
        let mut b = NetlistBuilder::new();
        let a = b.input("A");
        let c = b.input("C");
        let _dead = b.gate(GateKind::Or, &[a, c], "DEAD").unwrap();
        let d = b.gate(GateKind::And, &[a, c], "D").unwrap();
        b.output(d);
        let nl = b.finish().unwrap();
        assert!(check(&nl, Mode::Combinational).is_err());
        assert!(check_lenient(&nl, Mode::Combinational).is_ok());
    }

    #[test]
    fn cycle_is_reported() {
        let mut b = NetlistBuilder::new();
        let a = b.input("A");
        let x = b.fresh_net();
        let y = b.fresh_net();
        b.gate_onto(GateKind::And, &[a, y], x).unwrap();
        b.gate_onto(GateKind::Not, &[x], y).unwrap();
        b.output(y);
        let nl = b.finish().unwrap();
        let err = check(&nl, Mode::Combinational).unwrap_err();
        assert!(err.issues.iter().any(|i| matches!(i, Issue::Cycle { .. })));
    }

    #[test]
    fn dff_rejected_combinational_allowed_sequential() {
        let mut b = NetlistBuilder::new();
        let a = b.input("A");
        let q = b.gate(GateKind::Dff, &[a], "Q").unwrap();
        b.output(q);
        let nl = b.finish().unwrap();
        assert!(check(&nl, Mode::Combinational).is_err());
        assert!(check(&nl, Mode::Sequential).is_ok());
    }

    #[test]
    fn error_display_lists_all_issues() {
        let mut b = NetlistBuilder::new();
        let a = b.input("A");
        let ghost = b.fresh_net();
        let d = b.gate(GateKind::And, &[a, ghost], "D").unwrap();
        b.output(d);
        let nl = b.finish().unwrap();
        let err = check(&nl, Mode::Combinational).unwrap_err();
        let text = err.to_string();
        assert!(text.contains("validation failed"));
        assert!(text.contains("never driven"));
    }
}
