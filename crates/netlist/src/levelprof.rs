//! Per-level execution profiling: the hot-path accumulator behind
//! `udsim hotspots` and `GET /debug/hotspots`.
//!
//! The paper's cost model says compiled-simulation time is dominated by
//! per-level word operations over the levelized netlist; this module is
//! the measurement side of that claim. An engine that supports leveled
//! profiling walks its compiled program level by level and reports each
//! sweep to a [`LevelTimer`], which attributes wall-clock **self time**
//! to levels while reading the clock only every
//! [`TIMER_GRANULARITY_WORD_OPS`] units of work — the amortization that
//! keeps profiling overhead small on wide levels and bounded (two clock
//! reads per vector) on tiny circuits.
//!
//! Attribution contract: everything an engine does inside one profiled
//! vector lands in *some* level — per-vector setup (input broadcasts,
//! waveform resets, retention copies) belongs to level 0 — so the
//! per-level `self_ns` of a [`LevelProfile`] sums to exactly the time
//! spent inside the profiled calls. The `udsim hotspots` property tests
//! hold engines to that: level self-times must sum to within 20% of the
//! enclosing simulate span.
//!
//! Level indexing: slot 0 is per-vector setup plus any level-0 work;
//! slot `k` (1..=depth) is the sweep of gates at level `k`. Event-driven
//! engines map simulated time step `t` to slot `t` (unit delay makes
//! the two coincide for glitch-free propagation).

use std::time::Instant;

/// Clock-read granularity of [`LevelTimer`], in weighted work units
/// (word operations). Pending level segments accumulate until their
/// combined work crosses this threshold; one `Instant` read then covers
/// them all, and the elapsed time is distributed proportionally to each
/// segment's work. At one clock read per ~4096 word ops the timer adds
/// well under 5% even when a word op is a single machine instruction.
pub const TIMER_GRANULARITY_WORD_OPS: u64 = 4096;

/// Accumulated cost of one netlist level across profiled vectors.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct LevelCost {
    /// Wall-clock self time attributed to this level, in nanoseconds.
    pub self_ns: u64,
    /// Word operations executed (compiled instructions for the code
    /// generators; for event-driven engines, scheduled events).
    pub word_ops: u64,
    /// Gate evaluations performed.
    pub gate_evals: u64,
    /// Estimated bytes of simulation state touched (reads + writes).
    pub bytes_touched_est: u64,
}

impl LevelCost {
    /// Folds `other` into `self`, field by field.
    pub fn merge(&mut self, other: &LevelCost) {
        self.self_ns = self.self_ns.saturating_add(other.self_ns);
        self.word_ops = self.word_ops.saturating_add(other.word_ops);
        self.gate_evals = self.gate_evals.saturating_add(other.gate_evals);
        self.bytes_touched_est = self
            .bytes_touched_est
            .saturating_add(other.bytes_touched_est);
    }
}

/// Per-level cost accumulator for one engine over some number of
/// profiled vectors. Index `k` of [`LevelProfile::levels`] is netlist
/// level `k` (0 = per-vector setup; see the module docs).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct LevelProfile {
    /// One accumulated cost per level, index = level.
    pub levels: Vec<LevelCost>,
    /// Vectors folded into this profile.
    pub vectors: u64,
}

impl LevelProfile {
    /// An empty profile sized for a circuit of the given `depth`
    /// (slots 0..=depth).
    pub fn with_depth(depth: usize) -> Self {
        LevelProfile {
            levels: vec![LevelCost::default(); depth + 1],
            vectors: 0,
        }
    }

    /// Grows the level vector so `levels[level]` exists.
    pub fn ensure_level(&mut self, level: usize) {
        if self.levels.len() <= level {
            self.levels.resize(level + 1, LevelCost::default());
        }
    }

    /// Sum of every level's cost.
    pub fn total(&self) -> LevelCost {
        let mut total = LevelCost::default();
        for cost in &self.levels {
            total.merge(cost);
        }
        total
    }

    /// Sum of per-level self time, in nanoseconds.
    pub fn total_self_ns(&self) -> u64 {
        self.levels
            .iter()
            .fold(0u64, |acc, c| acc.saturating_add(c.self_ns))
    }

    /// Folds another profile in (levelwise; vector counts add).
    pub fn merge(&mut self, other: &LevelProfile) {
        self.ensure_level(other.levels.len().saturating_sub(1));
        for (slot, cost) in self.levels.iter_mut().zip(&other.levels) {
            slot.merge(cost);
        }
        self.vectors = self.vectors.saturating_add(other.vectors);
    }
}

/// One compile-time level segment of a compiled program: a contiguous
/// op range that belongs to a single netlist level, with its static
/// work counts. The code generators emit ops grouped by the levelized
/// worklist order, which is *not* sorted by level — so each compiler
/// records the run-length segments of its own emission order and the
/// leveled executor replays exactly those ranges. Op order is never
/// changed for profiling.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct LevelSegment {
    /// Netlist level this segment's ops belong to.
    pub level: usize,
    /// First op index of the segment (engine-defined op stream).
    pub start: usize,
    /// One past the last op index.
    pub end: usize,
    /// Static word operations in the segment.
    pub word_ops: u64,
    /// Gate evaluations the segment performs per vector.
    pub gate_evals: u64,
    /// Estimated bytes touched per execution of the segment.
    pub bytes_touched_est: u64,
}

/// Builds run-length [`LevelSegment`]s in emission order: feed it one
/// `(level, op_count, …)` record per emitted op group and it merges
/// consecutive records at the same level.
#[derive(Clone, Debug, Default)]
pub struct SegmentBuilder {
    segments: Vec<LevelSegment>,
    cursor: usize,
}

impl SegmentBuilder {
    /// An empty builder starting at op index 0.
    pub fn new() -> Self {
        SegmentBuilder::default()
    }

    /// Records `ops` consecutive ops at `level` performing `gate_evals`
    /// gate evaluations and touching ~`bytes` of state, merging into
    /// the previous segment when the level is unchanged.
    pub fn emit(&mut self, level: usize, ops: usize, word_ops: u64, gate_evals: u64, bytes: u64) {
        let start = self.cursor;
        self.cursor += ops;
        if let Some(last) = self.segments.last_mut() {
            if last.level == level && last.end == start {
                last.end = self.cursor;
                last.word_ops += word_ops;
                last.gate_evals += gate_evals;
                last.bytes_touched_est += bytes;
                return;
            }
        }
        self.segments.push(LevelSegment {
            level,
            start,
            end: self.cursor,
            word_ops,
            gate_evals,
            bytes_touched_est: bytes,
        });
    }

    /// Total ops emitted so far (the next segment's start index).
    pub fn cursor(&self) -> usize {
        self.cursor
    }

    /// The finished segment list.
    pub fn finish(self) -> Vec<LevelSegment> {
        self.segments
    }
}

/// Derives the static per-level profile (zero `self_ns`) from a
/// segment list — the "paper side" of measured-vs-static hotspot
/// comparisons, and the partition-weight vector the ROADMAP's
/// partitioner consumes.
pub fn static_profile(segments: &[LevelSegment]) -> LevelProfile {
    let mut profile = LevelProfile::default();
    for segment in segments {
        profile.ensure_level(segment.level);
        let slot = &mut profile.levels[segment.level];
        slot.word_ops += segment.word_ops;
        slot.gate_evals += segment.gate_evals;
        slot.bytes_touched_est += segment.bytes_touched_est;
    }
    profile
}

/// Chunked per-level wall-clock attributor for one profiled vector.
///
/// Create one at the top of a leveled simulate call; report each level
/// sweep with [`LevelTimer::segment`]; the timer reads the clock only
/// when pending work crosses [`TIMER_GRANULARITY_WORD_OPS`] (or on
/// drop) and splits the elapsed nanoseconds across the pending
/// segments proportionally to their work. Dropping the timer flushes,
/// so the profile's `self_ns` always accounts for the full span from
/// construction to drop — early returns included.
pub struct LevelTimer<'p> {
    profile: &'p mut LevelProfile,
    mark: Instant,
    /// (level, weight) pairs since the last clock read.
    pending: Vec<(usize, u64)>,
    pending_weight: u64,
    granularity: u64,
}

impl<'p> LevelTimer<'p> {
    /// Starts the clock and counts one vector into `profile`.
    pub fn new(profile: &'p mut LevelProfile) -> Self {
        profile.vectors = profile.vectors.saturating_add(1);
        LevelTimer {
            profile,
            mark: Instant::now(),
            pending: Vec::with_capacity(8),
            pending_weight: 0,
            granularity: TIMER_GRANULARITY_WORD_OPS,
        }
    }

    /// As [`LevelTimer::new`] with a custom clock-read granularity
    /// (tests use 0 to force one read per segment).
    pub fn with_granularity(profile: &'p mut LevelProfile, granularity: u64) -> Self {
        let mut timer = LevelTimer::new(profile);
        timer.granularity = granularity;
        timer
    }

    /// Reports that the sweep of `level` just finished, having executed
    /// `word_ops` word operations, `gate_evals` gate evaluations, and
    /// touched ~`bytes` of state since the previous report.
    pub fn segment(&mut self, level: usize, word_ops: u64, gate_evals: u64, bytes: u64) {
        self.profile.ensure_level(level);
        let slot = &mut self.profile.levels[level];
        slot.word_ops = slot.word_ops.saturating_add(word_ops);
        slot.gate_evals = slot.gate_evals.saturating_add(gate_evals);
        slot.bytes_touched_est = slot.bytes_touched_est.saturating_add(bytes);
        // Weight 1 floor: a segment with no counted ops (e.g. an empty
        // level) still gets a share of elapsed time, keeping the total
        // self time equal to the total elapsed time.
        let weight = word_ops.max(gate_evals).max(1);
        match self.pending.last_mut() {
            Some((last, w)) if *last == level => *w += weight,
            _ => self.pending.push((level, weight)),
        }
        self.pending_weight += weight;
        if self.pending_weight >= self.granularity {
            self.flush();
        }
    }

    /// Reads the clock once and distributes the elapsed time over the
    /// pending segments proportionally to their weights (remainder to
    /// the last segment, so no nanosecond is dropped).
    fn flush(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        let now = Instant::now();
        let elapsed = u64::try_from(now.duration_since(self.mark).as_nanos()).unwrap_or(u64::MAX);
        self.mark = now;
        let total_weight = self.pending_weight.max(1);
        let mut distributed = 0u64;
        let last = self.pending.len() - 1;
        for (index, &(level, weight)) in self.pending.iter().enumerate() {
            let share = if index == last {
                elapsed.saturating_sub(distributed)
            } else {
                ((elapsed as u128 * weight as u128) / total_weight as u128) as u64
            };
            distributed = distributed.saturating_add(share);
            self.profile.ensure_level(level);
            self.profile.levels[level].self_ns =
                self.profile.levels[level].self_ns.saturating_add(share);
        }
        self.pending.clear();
        self.pending_weight = 0;
    }
}

impl Drop for LevelTimer<'_> {
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segment_builder_merges_runs_and_tracks_the_cursor() {
        let mut builder = SegmentBuilder::new();
        builder.emit(0, 3, 3, 0, 24);
        builder.emit(1, 2, 2, 1, 16);
        builder.emit(1, 4, 4, 2, 32); // same level, contiguous → merge
        builder.emit(2, 1, 1, 1, 8);
        builder.emit(1, 2, 2, 1, 16); // level 1 again → new segment
        assert_eq!(builder.cursor(), 12);
        let segments = builder.finish();
        assert_eq!(segments.len(), 4);
        assert_eq!(
            (segments[1].level, segments[1].start, segments[1].end),
            (1, 3, 9)
        );
        assert_eq!(segments[1].word_ops, 6);
        assert_eq!(segments[1].gate_evals, 3);
        assert_eq!((segments[3].start, segments[3].end), (10, 12));
    }

    #[test]
    fn static_profile_accumulates_by_level() {
        let mut builder = SegmentBuilder::new();
        builder.emit(0, 2, 2, 0, 16);
        builder.emit(1, 3, 3, 3, 24);
        builder.emit(2, 1, 1, 1, 8);
        builder.emit(1, 2, 2, 2, 16);
        let profile = static_profile(&builder.finish());
        assert_eq!(profile.levels.len(), 3);
        assert_eq!(profile.levels[1].word_ops, 5);
        assert_eq!(profile.levels[1].gate_evals, 5);
        assert_eq!(profile.levels[0].gate_evals, 0);
        assert_eq!(profile.total().word_ops, 8);
    }

    #[test]
    fn timer_self_times_sum_to_the_timed_span() {
        let mut profile = LevelProfile::default();
        let clock = Instant::now();
        {
            let mut timer = LevelTimer::new(&mut profile);
            for level in 0..4 {
                std::hint::black_box(vec![level as u64; 512]);
                timer.segment(level, 100, 10, 800);
            }
        }
        let span = u64::try_from(clock.elapsed().as_nanos()).unwrap();
        let total = profile.total_self_ns();
        assert!(total > 0, "timer recorded nothing");
        assert!(
            total <= span,
            "attributed {total} ns exceeds the enclosing span {span} ns"
        );
        assert_eq!(profile.vectors, 1);
        assert_eq!(profile.total().word_ops, 400);
        assert_eq!(profile.total().gate_evals, 40);
    }

    #[test]
    fn chunked_timer_reads_distribute_proportionally() {
        let mut profile = LevelProfile::default();
        {
            // Granularity high enough that every segment lands in one
            // pending batch, flushed only on drop.
            let mut timer = LevelTimer::with_granularity(&mut profile, u64::MAX);
            timer.segment(0, 1, 0, 0);
            timer.segment(1, 999, 0, 0);
        }
        let total = profile.total_self_ns();
        // One clock interval split 1:999 — level 1 must dominate.
        assert_eq!(profile.levels[0].self_ns + profile.levels[1].self_ns, total);
        assert!(
            profile.levels[1].self_ns >= profile.levels[0].self_ns,
            "heavy level got less time: {profile:?}"
        );
    }

    #[test]
    fn merge_is_levelwise_and_grows() {
        let mut a = LevelProfile::with_depth(1);
        a.levels[1].self_ns = 10;
        a.vectors = 2;
        let mut b = LevelProfile::with_depth(3);
        b.levels[1].self_ns = 5;
        b.levels[3].gate_evals = 7;
        b.vectors = 1;
        a.merge(&b);
        assert_eq!(a.levels.len(), 4);
        assert_eq!(a.levels[1].self_ns, 15);
        assert_eq!(a.levels[3].gate_evals, 7);
        assert_eq!(a.vectors, 3);
    }
}
