//! Resource limits for compilation and execution.
//!
//! Maurer's compiled techniques trade robustness for speed: the PC-set
//! and parallel compilers allocate state proportional to depth × nets,
//! so a pathological netlist can exhaust memory where the interpreted
//! event-driven baseline would plod along safely. [`ResourceLimits`]
//! gives every compiler a budget to enforce *before* allocating;
//! exceeding one yields a typed [`LimitExceeded`] instead of an OOM
//! kill or silent wraparound.
//!
//! This lives in the netlist crate — the root of the workspace
//! dependency graph — so the technique crates (`uds-pcset`,
//! `uds-parallel`) can enforce limits inside their compilers and
//! `uds-core` can build its budget/fallback layer on top.

use std::fmt;
use std::time::Instant;

/// A resource a budget can constrain.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Resource {
    /// Circuit depth (longest path, in gate delays).
    Depth,
    /// Gate count.
    Gates,
    /// Primary-input count.
    Inputs,
    /// Words per bit-field (parallel technique).
    FieldWords,
    /// Estimated bytes of simulator state.
    MemoryBytes,
    /// Wall-clock compile deadline.
    Deadline,
    /// An arithmetic quantity overflowed its machine type — the
    /// hard ceiling that exists even when no explicit limit is set.
    Arithmetic,
}

impl Resource {
    /// Human-readable unit-carrying name.
    pub fn describe(self) -> &'static str {
        match self {
            Resource::Depth => "circuit depth",
            Resource::Gates => "gate count",
            Resource::Inputs => "primary-input count",
            Resource::FieldWords => "bit-field words",
            Resource::MemoryBytes => "estimated memory bytes",
            Resource::Deadline => "wall-clock deadline",
            Resource::Arithmetic => "machine-arithmetic range",
        }
    }
}

impl fmt::Display for Resource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.describe())
    }
}

/// A typed budget violation: which resource, how much was needed, and
/// how much the budget allowed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct LimitExceeded {
    /// The constrained resource.
    pub resource: Resource,
    /// How much the circuit needed (saturated when overflowing `u64`).
    pub needed: u64,
    /// The configured allowance.
    pub allowed: u64,
}

impl fmt::Display for LimitExceeded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.resource {
            Resource::Deadline => write!(
                f,
                "budget exceeded: {} ({} ms allowed, {} ms elapsed)",
                self.resource, self.allowed, self.needed
            ),
            Resource::Arithmetic => write!(
                f,
                "budget exceeded: {} (a compile-time quantity overflowed its machine type — circuit too large to address)",
                self.resource
            ),
            _ => write!(
                f,
                "budget exceeded: {} (needed {}, allowed {})",
                self.resource, self.needed, self.allowed
            ),
        }
    }
}

impl std::error::Error for LimitExceeded {}

/// Compile-time resource budget. `None` fields are unconstrained.
///
/// The default budget is fully open; [`ResourceLimits::production`]
/// mirrors what a service front end would enforce against untrusted
/// input.
#[derive(Clone, Copy, Debug, Default)]
pub struct ResourceLimits {
    /// Maximum circuit depth, in gate delays.
    pub max_depth: Option<u32>,
    /// Maximum gate count.
    pub max_gates: Option<u64>,
    /// Maximum primary inputs.
    pub max_inputs: Option<u64>,
    /// Maximum words per bit-field (parallel technique; a circuit of
    /// depth d needs `ceil((d + 1) / 32)` words per net).
    pub max_field_words: Option<u32>,
    /// Maximum estimated bytes of simulator state.
    pub max_memory_bytes: Option<u64>,
    /// Wall-clock deadline for compilation.
    pub deadline: Option<Instant>,
}

impl ResourceLimits {
    /// A fully open budget (every check passes).
    pub fn unlimited() -> Self {
        ResourceLimits::default()
    }

    /// A conservative budget suitable for untrusted input: depth ≤
    /// 4096, ≤ 1M gates, ≤ 64Ki inputs, ≤ 128 words per field, ≤ 256
    /// MiB of simulator state.
    pub fn production() -> Self {
        ResourceLimits {
            max_depth: Some(4096),
            max_gates: Some(1 << 20),
            max_inputs: Some(1 << 16),
            max_field_words: Some(128),
            max_memory_bytes: Some(256 << 20),
            deadline: None,
        }
    }

    /// Checks one quantity against one optional ceiling.
    pub fn check(
        resource: Resource,
        needed: u64,
        allowed: Option<u64>,
    ) -> Result<(), LimitExceeded> {
        match allowed {
            Some(allowed) if needed > allowed => Err(LimitExceeded {
                resource,
                needed,
                allowed,
            }),
            _ => Ok(()),
        }
    }

    /// Checks circuit depth.
    pub fn check_depth(&self, depth: u32) -> Result<(), LimitExceeded> {
        Self::check(
            Resource::Depth,
            u64::from(depth),
            self.max_depth.map(u64::from),
        )
    }

    /// Checks gate count.
    pub fn check_gates(&self, gates: usize) -> Result<(), LimitExceeded> {
        Self::check(Resource::Gates, gates as u64, self.max_gates)
    }

    /// Checks primary-input count.
    pub fn check_inputs(&self, inputs: usize) -> Result<(), LimitExceeded> {
        Self::check(Resource::Inputs, inputs as u64, self.max_inputs)
    }

    /// Checks words-per-field.
    pub fn check_field_words(&self, words: u32) -> Result<(), LimitExceeded> {
        Self::check(
            Resource::FieldWords,
            u64::from(words),
            self.max_field_words.map(u64::from),
        )
    }

    /// Checks an estimated memory footprint.
    pub fn check_memory(&self, bytes: u64) -> Result<(), LimitExceeded> {
        Self::check(Resource::MemoryBytes, bytes, self.max_memory_bytes)
    }

    /// Checks the wall-clock deadline (call between compile phases).
    pub fn check_deadline(&self) -> Result<(), LimitExceeded> {
        match self.deadline {
            Some(deadline) if Instant::now() > deadline => {
                let over = Instant::now().saturating_duration_since(deadline);
                Err(LimitExceeded {
                    resource: Resource::Deadline,
                    needed: over.as_millis() as u64,
                    allowed: 0,
                })
            }
            _ => Ok(()),
        }
    }
}

/// A checked product that reports [`Resource::Arithmetic`] on overflow
/// instead of wrapping — the error that replaces the unchecked
/// `a * b` sizing arithmetic of the original compilers.
pub fn checked_mul_u64(a: u64, b: u64) -> Result<u64, LimitExceeded> {
    a.checked_mul(b).ok_or(LimitExceeded {
        resource: Resource::Arithmetic,
        needed: u64::MAX,
        allowed: u64::MAX,
    })
}

/// Checked sum analogous to [`checked_mul_u64`].
pub fn checked_add_u64(a: u64, b: u64) -> Result<u64, LimitExceeded> {
    a.checked_add(b).ok_or(LimitExceeded {
        resource: Resource::Arithmetic,
        needed: u64::MAX,
        allowed: u64::MAX,
    })
}

/// Narrows a quantity into `u32` (arena addressing), reporting
/// [`Resource::Arithmetic`] when it does not fit.
pub fn narrow_u32(value: u64) -> Result<u32, LimitExceeded> {
    u32::try_from(value).map_err(|_| LimitExceeded {
        resource: Resource::Arithmetic,
        needed: value,
        allowed: u64::from(u32::MAX),
    })
}

/// Narrows a quantity into `u16` (packed instruction fields), reporting
/// [`Resource::Arithmetic`] when it does not fit.
pub fn narrow_u16(value: usize) -> Result<u16, LimitExceeded> {
    u16::try_from(value).map_err(|_| LimitExceeded {
        resource: Resource::Arithmetic,
        needed: value as u64,
        allowed: u64::from(u16::MAX),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_passes_everything() {
        let limits = ResourceLimits::unlimited();
        limits.check_depth(u32::MAX).unwrap();
        limits.check_gates(usize::MAX).unwrap();
        limits.check_memory(u64::MAX).unwrap();
        limits.check_deadline().unwrap();
    }

    #[test]
    fn violations_carry_needed_and_allowed() {
        let limits = ResourceLimits {
            max_depth: Some(8),
            ..ResourceLimits::unlimited()
        };
        let err = limits.check_depth(9).unwrap_err();
        assert_eq!(err.resource, Resource::Depth);
        assert_eq!(err.needed, 9);
        assert_eq!(err.allowed, 8);
        assert!(err.to_string().contains("depth"));
        limits.check_depth(8).unwrap();
    }

    #[test]
    fn production_budget_is_finite() {
        let limits = ResourceLimits::production();
        assert!(limits.check_depth(10_000).is_err());
        assert!(limits.check_gates(2 << 20).is_err());
        assert!(limits.check_memory(1 << 30).is_err());
        assert!(limits.check_depth(100).is_ok());
    }

    #[test]
    fn expired_deadline_reports() {
        let limits = ResourceLimits {
            deadline: Some(Instant::now() - std::time::Duration::from_millis(5)),
            ..ResourceLimits::unlimited()
        };
        let err = limits.check_deadline().unwrap_err();
        assert_eq!(err.resource, Resource::Deadline);
    }

    #[test]
    fn checked_arithmetic_reports_overflow() {
        assert!(checked_mul_u64(u64::MAX, 2).is_err());
        assert_eq!(checked_mul_u64(6, 7).unwrap(), 42);
        assert!(checked_add_u64(u64::MAX, 1).is_err());
        assert_eq!(checked_add_u64(40, 2).unwrap(), 42);
    }
}
