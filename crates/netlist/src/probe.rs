//! Compile-time observability hooks.
//!
//! The technique crates (`uds-pcset`, `uds-parallel`) compute the
//! paper's static metrics — PC-set sizes, zero insertions, words
//! trimmed, shifts retained — in the middle of their compilers and,
//! historically, threw most of them away. [`Probe`] is the smallest
//! interface that lets a caller observe those quantities *and* the
//! phase structure of a compile without inverting the dependency
//! graph: this crate is the workspace's base, so every compiler can
//! accept a `&dyn Probe`, while the full telemetry registry (span
//! timing, JSON export) lives upstream in `uds-core::telemetry` and
//! implements this trait.
//!
//! Conventions:
//!
//! * **Spans** are hierarchical wall-clock phases. `span_start`/
//!   `span_end` must be balanced and properly nested; use
//!   [`ProbeSpan`] to get that by construction.
//! * **Gauges** (`gauge`) are *set* semantics: re-recording the same
//!   deterministic quantity (e.g. compiling the same netlist twice
//!   under a fallback chain) is idempotent. All static compile
//!   metrics are gauges.
//! * **Counters** (`count`) are *add* semantics, reserved for
//!   monotonic runtime tallies (vectors simulated, events processed,
//!   fallbacks fired).

/// Observer for compile phases and metrics. See the module docs for
/// the span/gauge/counter conventions.
pub trait Probe {
    /// Opens a nested wall-clock span. Must be closed by a matching
    /// [`Probe::span_end`].
    fn span_start(&self, name: &str);

    /// Closes the innermost open span; `name` must match its opener.
    fn span_end(&self, name: &str);

    /// Adds `delta` to a monotonic counter.
    fn count(&self, name: &str, delta: u64);

    /// Sets a gauge to `value` (idempotent for deterministic metrics).
    fn gauge(&self, name: &str, value: u64);

    /// Folds one sample into a named distribution. Default is a no-op
    /// so existing probes (and tests) keep compiling; the telemetry
    /// registry overrides it. The compilers use this for per-level
    /// quantities — one sample per netlist level — where a gauge per
    /// level would explode the namespace.
    fn record(&self, _name: &str, _sample: u64) {}
}

/// The default probe: observes nothing, costs nothing.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopProbe;

impl Probe for NoopProbe {
    fn span_start(&self, _name: &str) {}
    fn span_end(&self, _name: &str) {}
    fn count(&self, _name: &str, _delta: u64) {}
    fn gauge(&self, _name: &str, _value: u64) {}
}

/// RAII guard pairing `span_start` with `span_end` — the only way the
/// compilers open spans, so nesting is balanced by construction even
/// on early `?` returns.
pub struct ProbeSpan<'a> {
    probe: &'a dyn Probe,
    name: &'static str,
}

impl<'a> ProbeSpan<'a> {
    /// Opens `name` on `probe`; closes it when dropped.
    pub fn new(probe: &'a dyn Probe, name: &'static str) -> Self {
        probe.span_start(name);
        ProbeSpan { probe, name }
    }
}

impl Drop for ProbeSpan<'_> {
    fn drop(&mut self) {
        self.probe.span_end(self.name);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;

    /// A probe that logs every call, for asserting instrumentation.
    #[derive(Default)]
    struct LogProbe {
        log: RefCell<Vec<String>>,
    }

    impl Probe for LogProbe {
        fn span_start(&self, name: &str) {
            self.log.borrow_mut().push(format!("start {name}"));
        }
        fn span_end(&self, name: &str) {
            self.log.borrow_mut().push(format!("end {name}"));
        }
        fn count(&self, name: &str, delta: u64) {
            self.log.borrow_mut().push(format!("count {name} {delta}"));
        }
        fn gauge(&self, name: &str, value: u64) {
            self.log.borrow_mut().push(format!("gauge {name} {value}"));
        }
    }

    #[test]
    fn probe_span_balances_on_early_exit() {
        let probe = LogProbe::default();
        let attempt = |fail: bool| -> Result<(), ()> {
            let _span = ProbeSpan::new(&probe, "phase");
            if fail {
                return Err(());
            }
            Ok(())
        };
        attempt(true).unwrap_err();
        attempt(false).unwrap();
        assert_eq!(
            *probe.log.borrow(),
            vec!["start phase", "end phase", "start phase", "end phase"]
        );
    }

    #[test]
    fn noop_probe_is_callable() {
        let probe = NoopProbe;
        let _span = ProbeSpan::new(&probe, "x");
        probe.count("c", 1);
        probe.gauge("g", 2);
    }
}
