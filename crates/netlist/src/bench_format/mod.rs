//! The ISCAS-85 / ISCAS-89 `.bench` text format.
//!
//! This is the format the original benchmark circuits are distributed in:
//!
//! ```text
//! # c17 from the ISCAS-85 benchmark set
//! INPUT(1)
//! INPUT(2)
//! OUTPUT(22)
//! 10 = NAND(1, 3)
//! 22 = NAND(10, 16)
//! ```
//!
//! [`parse`] accepts the full format (including `DFF` from the sequential
//! ISCAS-89 set and constant generators), tolerates forward references and
//! arbitrary declaration order, and reports errors with line numbers.
//! [`write`] emits text that `parse` round-trips bit-for-bit structurally.

mod parser;
mod writer;

pub use parser::{parse, ParseError, ParseErrorKind};
pub use writer::{write, write_to};

/// The ISCAS-85 `c17` circuit, verbatim (it is six NAND gates and appears
/// in every logic-synthesis textbook). The larger ISCAS-85 circuits are
/// not redistributable here; see `generators::iscas` for calibrated
/// synthetic stand-ins.
pub const C17: &str = "\
# c17 — ISCAS-85 benchmark (6 NAND gates)
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
";

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{levelize, validate};

    #[test]
    fn c17_parses_and_validates() {
        let nl = parse(C17, "c17").unwrap();
        assert_eq!(nl.gate_count(), 6);
        assert_eq!(nl.primary_inputs().len(), 5);
        assert_eq!(nl.primary_outputs().len(), 2);
        validate::check(&nl, validate::Mode::Combinational).unwrap();
        let levels = levelize(&nl).unwrap();
        assert_eq!(levels.depth, 3);
    }

    #[test]
    fn c17_round_trips() {
        let nl = parse(C17, "c17").unwrap();
        let text = write(&nl);
        let reparsed = parse(&text, "c17").unwrap();
        assert_eq!(nl.gate_count(), reparsed.gate_count());
        assert_eq!(nl.net_count(), reparsed.net_count());
        for net in nl.net_ids() {
            assert_eq!(nl.net_name(net), reparsed.net_name(net));
        }
        assert_eq!(
            nl.primary_outputs()
                .iter()
                .map(|&n| nl.net_name(n))
                .collect::<Vec<_>>(),
            reparsed
                .primary_outputs()
                .iter()
                .map(|&n| reparsed.net_name(n))
                .collect::<Vec<_>>()
        );
    }
}
