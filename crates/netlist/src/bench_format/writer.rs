//! `.bench` emission.

use crate::Netlist;

/// Renders a netlist as `.bench` text.
///
/// Output order: a comment header, `INPUT` declarations, `OUTPUT`
/// declarations, then one assignment per gate in gate-id order. The text
/// parses back ([`super::parse`]) to a structurally identical netlist
/// (same net names, same gates, same port lists).
///
/// # Example
///
/// ```
/// use uds_netlist::{NetlistBuilder, GateKind, bench_format};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = NetlistBuilder::named("tiny");
/// let a = b.input("a");
/// let y = b.gate(GateKind::Not, &[a], "y")?;
/// b.output(y);
/// let text = bench_format::write(&b.finish()?);
/// assert!(text.contains("y = NOT(a)"));
/// # Ok(())
/// # }
/// ```
pub fn write(netlist: &Netlist) -> String {
    let mut out = String::new();
    write_to(&mut out, netlist).expect("writing to a String cannot fail");
    out
}

/// Like [`write`], but appends to any [`std::fmt::Write`] sink.
///
/// # Errors
///
/// Propagates errors from the sink (a `String` sink never fails).
pub fn write_to(out: &mut impl std::fmt::Write, netlist: &Netlist) -> std::fmt::Result {
    writeln!(out, "# {}", netlist.name())?;
    writeln!(
        out,
        "# {} inputs, {} outputs, {} gates",
        netlist.primary_inputs().len(),
        netlist.primary_outputs().len(),
        netlist.gate_count()
    )?;
    for &pi in netlist.primary_inputs() {
        writeln!(out, "INPUT({})", netlist.net_name(pi))?;
    }
    for &po in netlist.primary_outputs() {
        writeln!(out, "OUTPUT({})", netlist.net_name(po))?;
    }
    for gate in netlist.gates() {
        write!(
            out,
            "{} = {}(",
            netlist.net_name(gate.output),
            gate.kind.bench_keyword()
        )?;
        for (i, &input) in gate.inputs.iter().enumerate() {
            if i > 0 {
                write!(out, ", ")?;
            }
            write!(out, "{}", netlist.net_name(input))?;
        }
        writeln!(out, ")")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::super::parse;
    use super::*;
    use crate::{GateKind, NetlistBuilder};

    #[test]
    fn writes_ports_and_gates() {
        let mut b = NetlistBuilder::named("t");
        let a = b.input("a");
        let c = b.input("b");
        let y = b.gate(GateKind::Nand, &[a, c], "y").unwrap();
        b.output(y);
        let text = write(&b.finish().unwrap());
        assert!(text.contains("INPUT(a)"));
        assert!(text.contains("INPUT(b)"));
        assert!(text.contains("OUTPUT(y)"));
        assert!(text.contains("y = NAND(a, b)"));
    }

    #[test]
    fn constants_and_dffs_round_trip() {
        let mut b = NetlistBuilder::named("seq");
        let d = b.input("d");
        let q = b.gate(GateKind::Dff, &[d], "q").unwrap();
        let k = b.gate(GateKind::Const0, &[], "k").unwrap();
        let y = b.gate(GateKind::Or, &[q, k], "y").unwrap();
        b.output(y);
        let nl = b.finish().unwrap();
        let text = write(&nl);
        let reparsed = parse(&text, "seq").unwrap();
        assert_eq!(reparsed.gate_count(), 3);
        assert!(reparsed.is_sequential());
    }

    #[test]
    fn round_trip_preserves_structure() {
        let mut b = NetlistBuilder::named("rt");
        let a = b.input("a");
        let c = b.input("b");
        let d = b.input("c");
        let x = b.gate(GateKind::Xor, &[a, c, d], "x").unwrap();
        let y = b.gate(GateKind::Not, &[x], "y").unwrap();
        b.output(y);
        b.output(x);
        let nl = b.finish().unwrap();
        let reparsed = parse(&write(&nl), "rt").unwrap();
        assert_eq!(nl.gate_count(), reparsed.gate_count());
        assert_eq!(nl.primary_outputs().len(), reparsed.primary_outputs().len());
        for (g1, g2) in nl.gates().iter().zip(reparsed.gates()) {
            assert_eq!(g1.kind, g2.kind);
            assert_eq!(g1.inputs.len(), g2.inputs.len());
        }
    }
}
