//! `.bench` parsing.
//!
//! The parser is total over arbitrary text: any byte sequence that is
//! valid UTF-8 either parses into a [`Netlist`] or returns a spanned
//! [`ParseError`] — it never panics, however adversarial the input
//! (truncated files, absurd fan-ins, duplicate definitions, garbage
//! lines). The adversarial corpus in `crates/netlist/tests/` holds it
//! to that.

use std::fmt;

use crate::{BuildError, GateKind, Netlist, NetlistBuilder};

/// The longest offending-token excerpt an error will quote. Anything
/// longer (a 10 000-name fan-in list, say) is cut with an ellipsis so
/// the message stays one line.
const MAX_TOKEN_EXCERPT: usize = 40;

/// What went wrong at a particular spot.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ParseErrorKind {
    /// The line is not a comment, declaration, or assignment.
    Syntax {
        /// A short description of what was expected.
        expected: &'static str,
        /// The offending token (excerpted if long).
        found: String,
    },
    /// The gate keyword is not recognized.
    UnknownGateKind {
        /// The offending keyword.
        keyword: String,
    },
    /// A signal name is empty or contains whitespace/parentheses.
    BadName {
        /// The offending name.
        name: String,
    },
    /// Structural error from the netlist builder (duplicate driver, bad
    /// arity, duplicate input declaration).
    Build(BuildError),
}

/// Parse error spanned to a 1-based line and column. Deferred
/// structural errors that only surface once the whole file has been
/// read (from [`NetlistBuilder::finish`]) carry line 0, column 0.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseError {
    /// 1-based line number in the input text (0 = whole file).
    pub line: usize,
    /// 1-based column, counted in characters (0 = whole line).
    pub column: usize,
    /// The specific problem.
    pub kind: ParseErrorKind,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(f, "line {}", self.line)?;
            if self.column > 0 {
                write!(f, ", column {}", self.column)?;
            }
            write!(f, ": ")?;
        }
        match &self.kind {
            ParseErrorKind::Syntax { expected, found } => {
                write!(f, "expected {expected}, found `{found}`")
            }
            ParseErrorKind::UnknownGateKind { keyword } => {
                write!(f, "unknown gate kind `{keyword}`")
            }
            ParseErrorKind::BadName { name } => write!(f, "bad signal name `{name}`"),
            ParseErrorKind::Build(err) => write!(f, "{err}"),
        }
    }
}

impl std::error::Error for ParseError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match &self.kind {
            ParseErrorKind::Build(err) => Some(err),
            _ => None,
        }
    }
}

/// Parses `.bench` text into a [`Netlist`].
///
/// Accepts the ISCAS-85/89 dialect: `INPUT(x)` / `OUTPUT(x)`
/// declarations, `y = KIND(a, b, …)` assignments, `#` comments, blank
/// lines, and names containing anything except whitespace, `(`, `)`, `,`
/// and `=`. Forward references are fine — declaration order is free.
///
/// The result is **not** validated beyond what the builder enforces
/// (duplicate drivers, arity); run [`crate::validate::check`] for full
/// structural checking.
///
/// # Errors
///
/// Returns a [`ParseError`] spanned to the offending line and column for
/// syntax problems, unknown gate keywords, and structural builder
/// errors. Never panics, whatever the input.
///
/// # Example
///
/// ```
/// use uds_netlist::bench_format;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let nl = bench_format::parse(bench_format::C17, "c17")?;
/// assert_eq!(nl.gate_count(), 6);
/// # Ok(())
/// # }
/// ```
pub fn parse(text: &str, name: &str) -> Result<Netlist, ParseError> {
    let mut b = NetlistBuilder::named(name);

    for (index, raw_line) in text.lines().enumerate() {
        let span = Span {
            line: index + 1,
            raw: raw_line,
        };
        let line = strip_comment(raw_line).trim();
        if line.is_empty() {
            continue;
        }

        if let Some(rest) = strip_keyword_call(line, "INPUT") {
            let signal = check_name(rest, span)?;
            let net = b.get_or_create_net(signal);
            b.declare_input(net);
            continue;
        }
        if let Some(rest) = strip_keyword_call(line, "OUTPUT") {
            let signal = check_name(rest, span)?;
            let net = b.get_or_create_net(signal);
            b.output(net);
            continue;
        }

        // Assignment: NAME = KIND(arg, ...)
        let Some((lhs, rhs)) = line.split_once('=') else {
            return Err(span.syntax("INPUT(...), OUTPUT(...), or `name = KIND(...)`", line));
        };
        let lhs = check_name(lhs.trim(), span)?;
        let rhs = rhs.trim();
        let Some(open) = rhs.find('(') else {
            return Err(span.syntax("`KIND(arg, ...)` on the right-hand side", rhs));
        };
        if !rhs.ends_with(')') {
            return Err(span.syntax("closing `)`", rhs));
        }
        let keyword = rhs[..open].trim();
        let kind: GateKind = keyword.parse().map_err(|_| {
            span.error_at(
                keyword,
                ParseErrorKind::UnknownGateKind {
                    keyword: excerpt(keyword),
                },
            )
        })?;
        let args_text = &rhs[open + 1..rhs.len() - 1];
        let mut inputs = Vec::new();
        if !args_text.trim().is_empty() {
            for arg in args_text.split(',') {
                let arg = check_name(arg.trim(), span)?;
                inputs.push(b.get_or_create_net(arg));
            }
        }
        let output = b.get_or_create_net(lhs);
        b.gate_onto(kind, &inputs, output)
            .map_err(|err| span.error_at(lhs, ParseErrorKind::Build(err)))?;
    }

    b.finish().map_err(|err| ParseError {
        line: 0,
        column: 0,
        kind: ParseErrorKind::Build(err),
    })
}

/// One source line plus its number — everything needed to span an error
/// to a column, since every fragment the parser handles borrows from
/// `raw`.
#[derive(Clone, Copy)]
struct Span<'a> {
    line: usize,
    raw: &'a str,
}

impl Span<'_> {
    /// The 1-based character column where `fragment` starts in this
    /// line, or 0 when the fragment is not a sub-slice (never the case
    /// in practice, but misattribution must not panic).
    fn column_of(self, fragment: &str) -> usize {
        let base = self.raw.as_ptr() as usize;
        let frag = fragment.as_ptr() as usize;
        if frag >= base && frag <= base + self.raw.len() {
            self.raw[..frag - base].chars().count() + 1
        } else {
            0
        }
    }

    fn error_at(self, fragment: &str, kind: ParseErrorKind) -> ParseError {
        ParseError {
            line: self.line,
            column: self.column_of(fragment),
            kind,
        }
    }

    fn syntax(self, expected: &'static str, found: &str) -> ParseError {
        self.error_at(
            found,
            ParseErrorKind::Syntax {
                expected,
                found: excerpt(found),
            },
        )
    }
}

/// Excerpts a token for an error message, character-boundary safe.
fn excerpt(token: &str) -> String {
    match token.char_indices().nth(MAX_TOKEN_EXCERPT) {
        Some((cut, _)) => format!("{}…", &token[..cut]),
        None => token.to_owned(),
    }
}

fn strip_comment(line: &str) -> &str {
    match line.find('#') {
        Some(pos) => &line[..pos],
        None => line,
    }
}

/// If `line` is `KEYWORD ( inner )` (case-insensitive keyword), returns
/// `inner` trimmed.
fn strip_keyword_call<'a>(line: &'a str, keyword: &str) -> Option<&'a str> {
    let prefix_len = keyword.len();
    let prefix = line.get(..prefix_len)?;
    if !prefix.eq_ignore_ascii_case(keyword) {
        return None;
    }
    let rest = line[prefix_len..].trim_start();
    let inner = rest.strip_prefix('(')?.strip_suffix(')')?;
    Some(inner.trim())
}

fn check_name<'a>(name: &'a str, span: Span<'_>) -> Result<&'a str, ParseError> {
    let bad = name.is_empty()
        || name
            .chars()
            .any(|c| c.is_whitespace() || matches!(c, '(' | ')' | ',' | '='));
    if bad {
        Err(span.error_at(
            name,
            ParseErrorKind::BadName {
                name: excerpt(name),
            },
        ))
    } else {
        Ok(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate;

    #[test]
    fn parses_minimal_circuit() {
        let nl = parse("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n", "mini").unwrap();
        assert_eq!(nl.name(), "mini");
        assert_eq!(nl.gate_count(), 1);
        assert_eq!(nl.primary_inputs().len(), 2);
        validate::check(&nl, validate::Mode::Combinational).unwrap();
    }

    #[test]
    fn tolerates_forward_references_and_odd_order() {
        let text = "y = AND(a, b)\nOUTPUT(y)\nINPUT(b)\nINPUT(a)\n";
        let nl = parse(text, "fwd").unwrap();
        validate::check(&nl, validate::Mode::Combinational).unwrap();
    }

    #[test]
    fn tolerates_comments_blanks_and_case() {
        let text = "# header\n\n  input( a )\nINPUT(b)\nOUTPUT(y) # trailing\ny = nand(a,b)\n";
        let nl = parse(text, "messy").unwrap();
        assert_eq!(nl.gate_count(), 1);
        assert_eq!(nl.gate(nl.gate_ids().next().unwrap()).kind, GateKind::Nand);
    }

    #[test]
    fn parses_dff_and_constants() {
        let text = "INPUT(d)\nOUTPUT(q)\nq = DFF(d)\nk = CONST1()\nOUTPUT(k)\n";
        let nl = parse(text, "seq").unwrap();
        assert!(nl.is_sequential());
        assert_eq!(nl.gate_count(), 2);
    }

    #[test]
    fn unknown_keyword_is_reported_with_line_and_column() {
        let err = parse("INPUT(a)\ny = FROB(a, a)\n", "x").unwrap_err();
        assert_eq!(err.line, 2);
        assert_eq!(err.column, 5, "FROB starts at column 5");
        assert!(matches!(err.kind, ParseErrorKind::UnknownGateKind { .. }));
    }

    #[test]
    fn syntax_error_is_reported_with_line() {
        let err = parse("INPUT(a)\nthis is nonsense\n", "x").unwrap_err();
        assert_eq!(err.line, 2);
        assert_eq!(err.column, 1);
        assert!(matches!(err.kind, ParseErrorKind::Syntax { .. }));
    }

    #[test]
    fn missing_close_paren_is_reported() {
        let err = parse("y = AND(a, b\n", "x").unwrap_err();
        assert_eq!(err.line, 1);
        assert_eq!(err.column, 5, "the unterminated call starts at column 5");
        assert!(matches!(err.kind, ParseErrorKind::Syntax { .. }));
    }

    #[test]
    fn duplicate_driver_is_reported() {
        let err = parse("INPUT(a)\ny = NOT(a)\ny = BUF(a)\n", "x").unwrap_err();
        assert_eq!(err.line, 3);
        assert_eq!(err.column, 1, "the redefined name is the offender");
        assert!(matches!(
            err.kind,
            ParseErrorKind::Build(BuildError::MultipleDrivers { .. })
        ));
    }

    #[test]
    fn bad_arity_is_reported() {
        let err = parse("INPUT(a)\nINPUT(b)\ny = NOT(a, b)\n", "x").unwrap_err();
        assert_eq!(err.line, 3);
        assert!(matches!(
            err.kind,
            ParseErrorKind::Build(BuildError::BadArity { .. })
        ));
    }

    #[test]
    fn bad_names_are_rejected() {
        let err = parse("INPUT()\n", "x").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::BadName { .. }));
        let err = parse("y y = AND(a, b)\n", "x").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::BadName { .. }));
    }

    #[test]
    fn error_messages_carry_line_and_column() {
        let err = parse("INPUT(a)\ny = FROB(a)\n", "x").unwrap_err();
        assert!(err.to_string().starts_with("line 2, column 5:"));
    }

    #[test]
    fn syntax_errors_quote_the_offending_token() {
        let err = parse("what even is this\n", "x").unwrap_err();
        let text = err.to_string();
        assert!(text.contains("`what even is this`"), "{text}");
    }

    #[test]
    fn long_offenders_are_excerpted() {
        let garbage = "x".repeat(500);
        let err = parse(&format!("{garbage}\n"), "x").unwrap_err();
        let text = err.to_string();
        assert!(text.len() < 200, "excerpted, not quoted whole: {text}");
        assert!(text.contains('…'), "{text}");
    }

    #[test]
    fn column_counts_characters_not_bytes() {
        // Two 2-byte characters precede the bad call; the column must
        // still be the character index.
        let err = parse("éé = FROB(a)\n", "x").unwrap_err();
        assert_eq!(err.line, 1);
        assert_eq!(err.column, 6, "FROB starts at character column 6");
    }

    #[test]
    fn input_as_substring_of_name_still_parses_as_assignment() {
        // A net literally named INPUTX on the LHS must not be mistaken
        // for an INPUT declaration.
        let text = "INPUT(a)\nINPUTX = NOT(a)\nOUTPUT(INPUTX)\n";
        let nl = parse(text, "tricky").unwrap();
        assert!(nl.find_net("INPUTX").is_some());
        assert_eq!(nl.primary_inputs().len(), 1);
    }
}
