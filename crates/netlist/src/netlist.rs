//! The immutable netlist arena.

use std::collections::HashMap;

use crate::{GateId, GateKind, NetId};

/// A gate instance: a [`GateKind`] applied to input nets, driving one
/// output net.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Gate {
    /// The logic function.
    pub kind: GateKind,
    /// Input nets, in declaration order. A net may appear more than once
    /// (the paper's PC-set algorithm explicitly accounts for this).
    pub inputs: Vec<NetId>,
    /// The single net driven by this gate.
    pub output: NetId,
}

/// An immutable gate-level netlist.
///
/// Built with [`crate::NetlistBuilder`] or parsed from ISCAS-85 `.bench`
/// text via [`crate::bench_format::parse`]. Nets and gates are stored in
/// dense arenas indexed by [`NetId`] and [`GateId`].
///
/// The model is **single-driver**: every net is driven by at most one gate
/// (nets with no driver are primary inputs or dangling). The paper's wired
/// AND/OR connections are modeled by inserting an explicit resolution gate,
/// the standard practice in modern netlist databases.
#[derive(Clone, PartialEq, Debug)]
pub struct Netlist {
    pub(crate) name: String,
    pub(crate) net_names: Vec<String>,
    pub(crate) name_index: HashMap<String, NetId>,
    pub(crate) gates: Vec<Gate>,
    /// Per net: the gate driving it, if any.
    pub(crate) driver: Vec<Option<GateId>>,
    /// Per net: the gates that read it (with multiplicity collapsed; a gate
    /// listing a net twice appears once here).
    pub(crate) fanout: Vec<Vec<GateId>>,
    pub(crate) primary_inputs: Vec<NetId>,
    pub(crate) primary_outputs: Vec<NetId>,
}

impl Netlist {
    /// The circuit name (e.g. `"c432"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Replaces the circuit name (the structure stays immutable).
    pub fn rename(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Number of nets.
    pub fn net_count(&self) -> usize {
        self.net_names.len()
    }

    /// Number of gates.
    pub fn gate_count(&self) -> usize {
        self.gates.len()
    }

    /// Iterates over all net ids, `n0..`.
    pub fn net_ids(&self) -> impl Iterator<Item = NetId> + '_ {
        (0..self.net_count()).map(NetId::from_index)
    }

    /// Iterates over all gate ids, `g0..`.
    pub fn gate_ids(&self) -> impl Iterator<Item = GateId> + '_ {
        (0..self.gate_count()).map(GateId::from_index)
    }

    /// The gate with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range (ids from this netlist never are).
    pub fn gate(&self, id: GateId) -> &Gate {
        &self.gates[id]
    }

    /// All gates, indexable by [`GateId`].
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// The name of a net.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn net_name(&self, id: NetId) -> &str {
        &self.net_names[id]
    }

    /// Looks a net up by name.
    pub fn find_net(&self, name: &str) -> Option<NetId> {
        self.name_index.get(name).copied()
    }

    /// The gate driving `net`, or `None` for primary inputs and dangling
    /// nets.
    pub fn driver(&self, net: NetId) -> Option<GateId> {
        self.driver[net]
    }

    /// The gates that read `net` (each listed once, even if the gate uses
    /// the net on several input pins).
    pub fn fanout(&self, net: NetId) -> &[GateId] {
        &self.fanout[net]
    }

    /// Primary inputs, in declaration order.
    pub fn primary_inputs(&self) -> &[NetId] {
        &self.primary_inputs
    }

    /// Primary outputs, in declaration order.
    pub fn primary_outputs(&self) -> &[NetId] {
        &self.primary_outputs
    }

    /// Returns `true` if `net` is a primary input.
    pub fn is_primary_input(&self, net: NetId) -> bool {
        // Primary input lists are short-ish; but this is on hot paths in
        // compilers, so use the driver array: a net is a PI iff it has no
        // driver and is in the PI list. Compilers call this per net, so we
        // precompute via contains on the (sorted-free) list only when the
        // driver is absent, which is rare for internal nets.
        self.driver[net].is_none() && self.primary_inputs.contains(&net)
    }

    /// Returns `true` if `net` is a primary output.
    pub fn is_primary_output(&self, net: NetId) -> bool {
        self.primary_outputs.contains(&net)
    }

    /// Returns `true` if any gate is a [`GateKind::Dff`] (i.e. the netlist
    /// is sequential and must be cut before compiled unit-delay
    /// simulation; see [`crate::sequential`]).
    pub fn is_sequential(&self) -> bool {
        self.gates.iter().any(|g| g.kind == GateKind::Dff)
    }

    /// Total number of gate input pins (counts multiplicity).
    pub fn pin_count(&self) -> usize {
        self.gates.iter().map(|g| g.inputs.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use crate::{GateKind, NetlistBuilder};

    #[test]
    fn accessors_reflect_structure() {
        let mut b = NetlistBuilder::new();
        let a = b.input("A");
        let c = b.input("B");
        let d = b.gate(GateKind::And, &[a, c], "D").unwrap();
        let e = b.gate(GateKind::Not, &[d], "E").unwrap();
        b.output(e);
        let nl = b.finish().unwrap();

        assert_eq!(nl.net_count(), 4);
        assert_eq!(nl.gate_count(), 2);
        assert_eq!(nl.net_name(d), "D");
        assert_eq!(nl.find_net("E"), Some(e));
        assert_eq!(nl.find_net("nope"), None);
        assert!(nl.is_primary_input(a));
        assert!(!nl.is_primary_input(d));
        assert!(nl.is_primary_output(e));
        assert!(!nl.is_primary_output(d));
        assert!(!nl.is_sequential());
        assert_eq!(nl.pin_count(), 3);

        let and_gate = nl.driver(d).unwrap();
        assert_eq!(nl.gate(and_gate).kind, GateKind::And);
        assert_eq!(nl.gate(and_gate).inputs, vec![a, c]);
        assert_eq!(nl.fanout(d), &[nl.driver(e).unwrap()]);
        assert!(nl.fanout(e).is_empty());
    }

    #[test]
    fn fanout_deduplicates_repeated_pins() {
        let mut b = NetlistBuilder::new();
        let a = b.input("A");
        // A appears on both pins of the same gate.
        let d = b.gate(GateKind::Xor, &[a, a], "D").unwrap();
        b.output(d);
        let nl = b.finish().unwrap();
        assert_eq!(nl.fanout(a).len(), 1);
        // ...but the pin multiplicity is preserved on the gate itself.
        assert_eq!(nl.gate(nl.driver(d).unwrap()).inputs.len(), 2);
    }
}
