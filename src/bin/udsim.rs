//! `udsim` — command-line front end for the compiled unit-delay
//! simulators.
//!
//! ```text
//! udsim simulate FILE.bench [--engine NAME] [--vectors N] [--seed S] [--vcd OUT.vcd]
//!                           [--jobs N] [--word 32|64] [--fallback] [--budget SPEC]
//!                           [--crosscheck] [--stats OUT.json]
//! udsim stats    FILE.bench
//! udsim codegen  FILE.bench [--technique pc-set|parallel] [--opt none|trim|pt|pt-trim|cb]
//!                           [--stats OUT.json]
//! udsim cone     FILE.bench OUTPUT_NET [...]   # fan-in cone as .bench on stdout
//! udsim serve    [--addr HOST:PORT] [--cache N] [--allow-quit] [--reqlog OUT.ndjson]
//!                [--stats OUT.json] [--trace OUT.json] [--budget SPEC] [--word 32|64]
//!                [--jobs N] [--workers N] [--queue N] [--read-timeout-ms MS]
//!                [--idle-timeout-ms MS] [--keep-alive-max N] [--request-timeout-ms MS]
//!                [--rate-limit R] [--max-jobs N] [--job-ttl-s S] [--hotspots]
//! udsim loadgen  [--addr HOST:PORT] [--bench FILE.bench] [--vectors N] [--seed S] [--jobs N]
//!                [--path P] [--concurrency N] [--rate R] [--duration-ms MS] [--json OUT.json]
//! udsim engines
//! ```
//!
//! `FILE.bench` is an ISCAS-85/89 `.bench` netlist (`-` reads stdin).
//! Sequential netlists are cut at their flip-flops automatically for
//! `stats`; `simulate` and `codegen` require combinational input.
//!
//! `--budget SPEC` caps compiler resources: a comma-separated list of
//! `depth=N`, `gates=N`, `inputs=N`, `field-words=N`, `memory=N[K|M|G]`,
//! `deadline-ms=N`, or the single word `production` for the stock
//! untrusted-input budget. `--fallback` degrades down the engine chain
//! (`parallel+pt+trim → parallel → pc-set → event-driven`) instead of
//! failing; `--crosscheck` verifies the surviving engine against a
//! fresh event-driven baseline after the run.
//!
//! `--jobs N` shards the vector stream across N worker threads, each
//! owning its own engine; a zero-delay prepass seeds every shard so the
//! printed rows are byte-identical to a sequential run for any N. With
//! `--jobs`, `--crosscheck` re-runs the stream sequentially and
//! verifies the batch output against it (`--vcd` needs the sequential
//! waveform and cannot be combined with `--jobs`). `--word 64` packs
//! the parallel engines' bit-fields into 64-bit words instead of 32.
//!
//! `--stats OUT.json` writes the telemetry report (span tree, runtime
//! counters, and the paper's static compile metrics; schema
//! `uds-telemetry-v1`, DESIGN.md §11) to `OUT.json`. `--stats -`
//! writes the JSON to stdout and moves the human-readable output to
//! stderr, so `udsim simulate c.bench --stats - | jq .` works.
//!
//! `udsim serve` runs the simulation daemon (DESIGN.md §14–15):
//! circuits POSTed to `/simulate` compile once into an LRU cache of
//! engine prototypes and every later request forks the cached
//! artifact; live telemetry scrapes at `GET /metrics` in the
//! Prometheus text format; `/healthz` and `/readyz` answer liveness
//! and readiness probes. Connections are HTTP/1.1 keep-alive, served
//! by a bounded pool of `--workers` threads behind a `--queue`-deep
//! admission queue: a full queue sheds with `429` + `Retry-After`,
//! `--rate-limit` token-buckets work-bearing requests per peer IP,
//! and `--request-timeout-ms` cancels an overlong simulation
//! cooperatively, answering `504` with the partial-work count. `POST
//! /jobs` submits the same body asynchronously (`GET /jobs/:id` for
//! progress, `/jobs/:id/result` for paged rows, `DELETE` to cancel),
//! bounded by `--max-jobs` and `--job-ttl-s`. The daemon drains
//! gracefully on SIGTERM/SIGINT (or `POST /quitquitquit` with
//! `--allow-quit`), then writes the final `--stats` snapshot.
//! `--reqlog` streams one `uds-reqlog-v1` NDJSON line per request,
//! carrying a `trace_id` (the sanitized `x-uds-trace-id` request
//! header, else generated — always echoed on the response) and a
//! `phase_ms` breakdown holding only the phases that actually ran;
//! `serve --trace` streams each finished request's span tree live as
//! Chrome `trace_event` JSON. `--hotspots` turns on per-level
//! sampling of `/simulate` requests: `GET /debug/hotspots?window_s=S`
//! aggregates a bounded ring of recent per-request level profiles and
//! `/metrics` grows `uds_hotspot_level_self_ns{engine,level}` gauges
//! for the hottest levels, so a hot daemon can be profiled under live
//! traffic without a restart.
//!
//! `udsim loadgen` applies closed- or open-loop load to a running
//! daemon and reports per-status counts and latency percentiles as
//! `uds-loadgen-v1` JSON (`--json`) — the tool that turns overload
//! behavior into a CI assertion.
//!
//! ## Exit codes
//!
//! Failures exit with the [`FailureClass`] code so scripts can route on
//! them: 2 usage, 3 parse/read, 4 structural (cycle, uncut flip-flop),
//! 5 budget exceeded, 6 contained engine panic, 7 cross-check mismatch,
//! 8 native toolchain unavailable or failed.
//! 0 is success; 1 is an internal error (a bug in udsim itself — e.g.
//! an uncontained panic unwinding out of `main`), never produced by
//! bad input.
//!
//! `--engine native` compiles the emitted C with the system C compiler
//! (`cc`, or `$UDS_CC`) at runtime and loads it with `dlopen`; it
//! always runs at the head of the guarded degradation chain, so a
//! missing compiler falls back to the interpreted engines (exit 0,
//! fallback counted in `--stats`) rather than failing the run.

use std::io::Read as _;
use std::process::ExitCode;
use std::time::{Duration, Instant};

use unit_delay_sim::core::vcd::VcdRecorder;
use unit_delay_sim::core::vectors::RandomVectors;
use unit_delay_sim::core::{
    build_engine_with_limits_probed_word, chain_preferring, install_signal_handlers, measure_perf,
    open_sink, record_build_info, record_perf_class, render_chrome_trace, run_batch_observed,
    run_loadgen, write_text, ActivityProfiler, BatchActivityObserver, BatchProbe,
    DefaultEngineFactory, Engine, FailureClass, FanoutProbe, GuardedSimulator, HumanOut,
    LoadgenConfig, MonitoringEngineFactory, NdjsonProgress, NoopBatchProbe, ServeConfig, SimError,
    SimServer, StreamContract, Telemetry, WordWidth,
};
use unit_delay_sim::netlist::stats::CircuitStats;
use unit_delay_sim::netlist::{levelize, Probe, ResourceLimits};
use unit_delay_sim::parallel::{self, Optimization, ParallelSimulator};
use unit_delay_sim::pcset::{self, PcSetSimulator};
use unit_delay_sim::prelude::{bench_format, Netlist};

/// A CLI failure: the message for stderr plus the process exit code.
struct CliError {
    message: String,
    code: u8,
}

impl CliError {
    fn usage(message: impl Into<String>) -> Self {
        CliError {
            message: message.into(),
            code: FailureClass::Usage.exit_code() as u8,
        }
    }

    fn class(message: impl Into<String>, class: FailureClass) -> Self {
        CliError {
            message: message.into(),
            code: class.exit_code() as u8,
        }
    }
}

impl From<String> for CliError {
    fn from(message: String) -> Self {
        CliError::usage(message)
    }
}

impl From<&str> for CliError {
    fn from(message: &str) -> Self {
        CliError::usage(message)
    }
}

impl From<SimError> for CliError {
    fn from(err: SimError) -> Self {
        CliError::class(err.to_string(), err.class())
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(err) => {
            eprintln!("udsim: {}", err.message);
            ExitCode::from(err.code)
        }
    }
}

fn run() -> Result<(), CliError> {
    let mut args = std::env::args().skip(1);
    let command = args.next().ok_or_else(usage)?;
    let rest: Vec<String> = args.collect();
    match command.as_str() {
        "simulate" => simulate(&rest),
        "profile" => profile(&rest),
        "hotspots" => hotspots(&rest),
        "stats" => stats(&rest),
        "codegen" => codegen(&rest),
        "cone" => cone(&rest),
        "serve" => serve(&rest),
        "loadgen" => loadgen(&rest),
        "engines" => {
            // `native` is not in `Engine::ALL` (it is a compilation
            // strategy over the parallel technique, not an interpreted
            // engine), but it is a valid `--engine` name, so list it.
            println!("{}", Engine::Native);
            for engine in Engine::ALL {
                println!("{engine}");
            }
            Ok(())
        }
        "--help" | "-h" | "help" => {
            eprintln!("{}", usage());
            Ok(())
        }
        other => Err(CliError::usage(format!(
            "unknown command `{other}`\n{}",
            usage()
        ))),
    }
}

fn usage() -> String {
    "usage:\n  udsim simulate FILE.bench [--engine NAME] [--vectors N] [--seed S] [--vcd OUT.vcd]\n                  \
     [--jobs N] [--word 32|64] [--fallback] [--budget SPEC] [--crosscheck] [--stats OUT.json]\n                  \
     [--trace OUT.json] [--progress OUT.ndjson] [--progress-interval MS]\n  \
     udsim profile FILE.bench [--engine NAME] [--vectors N] [--seed S] [--jobs N] [--word 32|64]\n                 \
     [--top K] [--json OUT.json] [--trace OUT.json] [--progress OUT.ndjson]\n                 \
     [--progress-interval MS]\n  \
     udsim hotspots FILE.bench [--engine NAME] [--vectors N] [--seed S] [--jobs N] [--word 32|64]\n                  \
     [--json OUT.json] [--folded OUT.folded]\n  \
     udsim stats FILE.bench\n  \
     udsim codegen FILE.bench [--technique pc-set|parallel] [--opt none|trim|pt|pt-trim|cb]\n                 \
     [--stats OUT.json]\n  \
     udsim cone FILE.bench OUTPUT_NET [...]\n  \
     udsim serve [--addr HOST:PORT] [--cache N] [--allow-quit] [--reqlog OUT.ndjson]\n              \
     [--stats OUT.json] [--trace OUT.json] [--budget SPEC] [--word 32|64] [--jobs N]\n              \
     [--workers N] [--queue N] [--read-timeout-ms MS] [--idle-timeout-ms MS]\n              \
     [--keep-alive-max N] [--request-timeout-ms MS] [--rate-limit R] [--max-jobs N]\n              \
     [--job-ttl-s S] [--hotspots]\n  \
     udsim loadgen [--addr HOST:PORT] [--bench FILE.bench] [--vectors N] [--seed S] [--jobs N]\n                \
     [--path P] [--concurrency N] [--rate R] [--duration-ms MS] [--json OUT.json]\n  \
     udsim engines\n\n\
     SPEC: production | depth=N,gates=N,inputs=N,field-words=N,memory=N[K|M|G],deadline-ms=N\n\
     stream flags (--stats, --trace, --progress, --json, --reqlog) accept `-` for stdout; at\n\
     most one per invocation may claim it, and human output then moves to stderr.\n\
     --trace exports the telemetry span tree as Chrome trace_event JSON (load in Perfetto);\n\
     hotspots attributes simulate self-time to netlist levels (level 0 = per-vector setup):\n\
     --json writes the uds-hotspot-v1 report, --folded writes collapsed-stack lines\n\
     (`engine;level_K NANOS`) for flamegraph tools; both accept `-` under the shared contract.\n\
     --progress streams per-shard NDJSON heartbeats during --jobs batch runs, at least\n\
     --progress-interval ms apart (default 100).\n\
     serve answers POST /simulate, POST /jobs (+ GET/DELETE /jobs/:id), GET /metrics\n\
     (Prometheus), GET /healthz, GET /readyz; --cache N keeps N compiled prototypes resident\n\
     (default 64, 0 disables); --workers sizes the pool (0 = cores); a full --queue sheds 429;\n\
     serve --trace streams each finished request's span tree live (trace ids honor the\n\
     x-uds-trace-id request header and are echoed on every response); serve --hotspots\n\
     samples per-request level profiles into GET /debug/hotspots?window_s=S and tops up\n\
     /metrics with uds_hotspot_level_self_ns gauges.\n\
     loadgen is closed-loop unless --rate sets open-loop arrivals; --bench makes the fleet\n\
     POST real work, otherwise it GETs --path (default /healthz).\n\n\
     --engine native compiles the emitted C (cc, or $UDS_CC) and dlopens it; without a C\n\
     compiler the run degrades to the interpreted chain (exit 0, fallback in --stats).\n\n\
     exit codes: 0 ok, 2 usage, 3 parse, 4 structural, 5 budget, 6 engine panic,\n\
     7 cross-check mismatch, 8 native toolchain; 1 is an internal error (a udsim bug),\n\
     never bad input"
        .to_owned()
}

fn load(path: &str) -> Result<Netlist, CliError> {
    let read_failed =
        |e: std::io::Error| CliError::class(format!("reading {path}: {e}"), FailureClass::Parse);
    let text = if path == "-" {
        let mut buffer = String::new();
        std::io::stdin()
            .read_to_string(&mut buffer)
            .map_err(read_failed)?;
        buffer
    } else {
        std::fs::read_to_string(path).map_err(read_failed)?
    };
    let name = std::path::Path::new(path)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("circuit");
    bench_format::parse(&text, name)
        .map_err(|e| CliError::class(format!("{path}: {e}"), FailureClass::Parse))
}

fn parse_engine(name: &str) -> Result<Engine, CliError> {
    Engine::parse(name).ok_or_else(|| {
        let mut names: Vec<String> = Engine::ALL.iter().map(|e| e.to_string()).collect();
        names.push(Engine::Native.to_string());
        CliError::usage(format!(
            "unknown engine `{name}` (expected one of: {})",
            names.join(", ")
        ))
    })
}

/// Parses a `--budget` spec (see [`usage`]) into [`ResourceLimits`].
fn parse_budget(spec: &str) -> Result<ResourceLimits, CliError> {
    if spec == "production" {
        return Ok(ResourceLimits::production());
    }
    let mut limits = ResourceLimits::unlimited();
    for item in spec.split(',') {
        let item = item.trim();
        if item.is_empty() {
            continue;
        }
        let (key, value) = item
            .split_once('=')
            .ok_or_else(|| CliError::usage(format!("--budget: `{item}` is not `key=value`")))?;
        let parse_u64 = |v: &str| -> Result<u64, CliError> {
            v.parse()
                .map_err(|e| CliError::usage(format!("--budget {key}: {e}")))
        };
        match key {
            "depth" => {
                limits.max_depth = Some(parse_u64(value)?.try_into().map_err(|_| {
                    CliError::usage(format!("--budget depth: `{value}` exceeds u32"))
                })?)
            }
            "gates" => limits.max_gates = Some(parse_u64(value)?),
            "inputs" => limits.max_inputs = Some(parse_u64(value)?),
            "field-words" => {
                limits.max_field_words = Some(parse_u64(value)?.try_into().map_err(|_| {
                    CliError::usage(format!("--budget field-words: `{value}` exceeds u32"))
                })?)
            }
            "memory" => limits.max_memory_bytes = Some(parse_memory(value)?),
            "deadline-ms" => {
                limits.deadline = Some(Instant::now() + Duration::from_millis(parse_u64(value)?))
            }
            other => {
                return Err(CliError::usage(format!(
                    "--budget: unknown key `{other}` (expected depth, gates, inputs, field-words, memory, deadline-ms)"
                )))
            }
        }
    }
    Ok(limits)
}

/// Parses a byte count with an optional K/M/G (binary) suffix.
fn parse_memory(value: &str) -> Result<u64, CliError> {
    let (digits, shift) = match value.as_bytes().last() {
        Some(b'K' | b'k') => (&value[..value.len() - 1], 10),
        Some(b'M' | b'm') => (&value[..value.len() - 1], 20),
        Some(b'G' | b'g') => (&value[..value.len() - 1], 30),
        _ => (value, 0),
    };
    let base: u64 = digits
        .parse()
        .map_err(|e| CliError::usage(format!("--budget memory: {e}")))?;
    base.checked_shl(shift)
        .filter(|_| base.leading_zeros() >= shift)
        .ok_or_else(|| CliError::usage(format!("--budget memory: `{value}` overflows u64")))
}

fn simulate(args: &[String]) -> Result<(), CliError> {
    let mut file = None;
    let mut engine: Option<Engine> = None;
    let mut vectors = 16usize;
    let mut seed = 1990u64;
    let mut vcd_path: Option<String> = None;
    let mut stats_path: Option<String> = None;
    let mut trace_path: Option<String> = None;
    let mut progress_path: Option<String> = None;
    let mut progress_interval: Option<Duration> = None;
    let mut fallback = false;
    let mut crosscheck = false;
    let mut jobs: Option<usize> = None;
    let mut word = WordWidth::default();
    let mut limits = ResourceLimits::unlimited();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--engine" => {
                engine = Some(parse_engine(iter.next().ok_or("--engine needs a value")?)?)
            }
            "--jobs" => {
                let value = iter.next().ok_or("--jobs needs a worker count")?;
                let parsed: usize = value
                    .parse()
                    .map_err(|e| CliError::usage(format!("--jobs: {e}")))?;
                if parsed == 0 {
                    return Err(CliError::usage("--jobs: worker count must be at least 1"));
                }
                jobs = Some(parsed);
            }
            "--word" => {
                let value = iter.next().ok_or("--word needs a width (32 or 64)")?;
                word = WordWidth::parse(value)
                    .ok_or_else(|| CliError::usage(format!("--word: `{value}` is not 32 or 64")))?;
            }
            "--vectors" => {
                vectors = iter
                    .next()
                    .ok_or("--vectors needs a value")?
                    .parse()
                    .map_err(|e| CliError::usage(format!("--vectors: {e}")))?;
            }
            "--seed" => {
                seed = iter
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|e| CliError::usage(format!("--seed: {e}")))?;
            }
            "--vcd" => vcd_path = Some(iter.next().ok_or("--vcd needs a path")?.clone()),
            "--stats" => {
                stats_path = Some(iter.next().ok_or("--stats needs a path (or `-`)")?.clone())
            }
            "--trace" => {
                trace_path = Some(iter.next().ok_or("--trace needs a path (or `-`)")?.clone())
            }
            "--progress" => {
                progress_path = Some(
                    iter.next()
                        .ok_or("--progress needs a path (or `-`)")?
                        .clone(),
                )
            }
            "--progress-interval" => {
                progress_interval = Some(parse_progress_interval(
                    iter.next()
                        .ok_or("--progress-interval needs milliseconds")?,
                )?)
            }
            "--fallback" => fallback = true,
            "--crosscheck" => crosscheck = true,
            "--budget" => limits = parse_budget(iter.next().ok_or("--budget needs a spec")?)?,
            other if file.is_none() && (other == "-" || !other.starts_with('-')) => {
                file = Some(other.to_owned());
            }
            other => return Err(CliError::usage(format!("unexpected argument `{other}`"))),
        }
    }
    let file = file.ok_or("missing FILE.bench")?;
    if progress_path.is_some() && jobs.is_none() {
        return Err(CliError::usage(
            "--progress streams batch heartbeats and requires --jobs",
        ));
    }
    if progress_interval.is_some() && progress_path.is_none() {
        return Err(CliError::usage(
            "--progress-interval paces the --progress stream and requires it",
        ));
    }
    // The stream flags share stdout under one contract: at most one `-`,
    // and any `-` moves the human output to stderr.
    let human = stream_contract(&[
        ("--stats", stats_path.as_deref()),
        ("--trace", trace_path.as_deref()),
        ("--progress", progress_path.as_deref()),
    ])?;
    let telemetry = (stats_path.is_some() || trace_path.is_some()).then(Telemetry::new);
    let nl = {
        let _span = telemetry.as_ref().map(|t| t.span("parse"));
        load(&file)?
    };
    if let Some(t) = &telemetry {
        t.label("command", "simulate");
        t.label("circuit", nl.name());
        t.label("seed", seed.to_string());
        t.label("vectors", vectors.to_string());
        record_build_info(t, word.bits());
    }
    let stimulus: Vec<Vec<bool>> = RandomVectors::new(nl.primary_inputs().len(), seed)
        .take(vectors)
        .collect();

    // `--engine native` always runs through the guarded chain: a host
    // without a C compiler degrades to the interpreted engines instead
    // of failing the run.
    let native = engine == Some(Engine::Native);
    if let Some(jobs) = jobs {
        if vcd_path.is_some() {
            return Err(CliError::usage(
                "--vcd needs the sequential waveform and cannot be combined with --jobs",
            ));
        }
        let chain = if fallback || native {
            fallback_chain(engine)
        } else {
            vec![engine.unwrap_or(Engine::ParallelPathTracingTrimming)]
        };
        let progress = progress_sink(progress_path.as_deref(), progress_interval)?;
        simulate_batch(
            &nl,
            limits,
            &chain,
            word,
            &stimulus,
            jobs,
            crosscheck,
            telemetry.as_ref(),
            progress.as_ref().map(|p| p as &dyn BatchProbe),
            &human,
        )?;
    } else if fallback || native {
        let chain = fallback_chain(engine);
        simulate_guarded(
            &nl,
            limits,
            &chain,
            word,
            &stimulus,
            vcd_path,
            crosscheck,
            telemetry.as_ref(),
            &human,
        )?;
    } else {
        if crosscheck {
            return Err(CliError::usage(
                "--crosscheck requires --fallback or --jobs",
            ));
        }
        let engine = engine.unwrap_or(Engine::ParallelPathTracingTrimming);
        simulate_single(
            &nl,
            engine,
            &limits,
            word,
            &stimulus,
            vcd_path,
            telemetry.as_ref(),
            &human,
        )?;
    }

    if let Some(telemetry) = &telemetry {
        if let Some(path) = &stats_path {
            collect_static_metrics(&nl, &limits, telemetry);
            write_stats(path, telemetry)?;
        }
        if let Some(path) = &trace_path {
            write_trace(path, telemetry)?;
        }
    }
    Ok(())
}

/// Applies the shared stdout contract to this invocation's stream
/// flags and returns the routed human-output sink.
fn stream_contract(flags: &[(&str, Option<&str>)]) -> Result<HumanOut, CliError> {
    let mut contract = StreamContract::new();
    for &(flag, dest) in flags {
        if let Some(dest) = dest {
            contract.claim(flag, dest).map_err(CliError::usage)?;
        }
    }
    Ok(contract.human())
}

/// Opens the `--progress` NDJSON sink, if requested, paced at
/// `--progress-interval` (default ~100 ms).
fn progress_sink(
    path: Option<&str>,
    interval: Option<Duration>,
) -> Result<Option<NdjsonProgress>, CliError> {
    path.map(|dest| {
        open_sink(dest)
            .map(|out| match interval {
                Some(interval) => NdjsonProgress::with_interval(out, interval),
                None => NdjsonProgress::new(out),
            })
            .map_err(|e| CliError::class(format!("opening {dest}: {e}"), FailureClass::Usage))
    })
    .transpose()
}

/// Parses a `--progress-interval` value in milliseconds (0 = every
/// heartbeat).
fn parse_progress_interval(value: &str) -> Result<Duration, CliError> {
    value
        .parse::<u64>()
        .map(Duration::from_millis)
        .map_err(|e| CliError::usage(format!("--progress-interval: {e}")))
}

/// Best-effort pass compiling the techniques the run did not already
/// cover, so the report always carries the paper's full static-metric
/// set (PC-set sizes and zero insertions, words trimmed, shifts
/// retained/eliminated per optimization). Engines the budget rejects
/// simply leave their gauges absent.
fn collect_static_metrics(nl: &Netlist, limits: &ResourceLimits, telemetry: &Telemetry) {
    let _span = telemetry.span("static-metrics");
    let probe: &dyn Probe = telemetry;
    let _ = PcSetSimulator::compile_probed(nl, limits, probe);
    for optimization in [
        Optimization::None,
        Optimization::Trimming,
        Optimization::PathTracing,
        Optimization::PathTracingTrimming,
        Optimization::CycleBreaking,
    ] {
        let _ = ParallelSimulator::compile_probed(nl, optimization, limits, probe);
    }
}

/// Renders the telemetry report to `path` (`-` = stdout).
fn write_stats(path: &str, telemetry: &Telemetry) -> Result<(), CliError> {
    write_text(path, &telemetry.snapshot().render_json())
        .map_err(|e| CliError::class(format!("writing {path}: {e}"), FailureClass::Usage))
}

/// Renders the telemetry span tree as Chrome trace_event JSON to
/// `path` (`-` = stdout). Load the file in Perfetto / chrome://tracing.
fn write_trace(path: &str, telemetry: &Telemetry) -> Result<(), CliError> {
    write_text(path, &render_chrome_trace(&telemetry.snapshot()))
        .map_err(|e| CliError::class(format!("writing {path}: {e}"), FailureClass::Usage))
}

/// The degradation chain for `--fallback` (and `--engine native`): the
/// requested engine first (when one was named), then the default chain
/// minus duplicates.
fn fallback_chain(preferred: Option<Engine>) -> Vec<Engine> {
    chain_preferring(preferred)
}

fn print_header(nl: &Netlist, engine: Engine, human: &HumanOut) {
    human.line(format!(
        "# {}: {} gates, {} inputs, {} outputs, engine {engine}",
        nl.name(),
        nl.gate_count(),
        nl.primary_inputs().len(),
        nl.primary_outputs().len()
    ));
    let header: Vec<&str> = nl
        .primary_outputs()
        .iter()
        .map(|&n| nl.net_name(n))
        .collect();
    human.line(format!("# vector -> {}", header.join(" ")));
}

fn print_row(
    nl: &Netlist,
    index: usize,
    vector: &[bool],
    human: &HumanOut,
    finals: impl Fn(&Netlist) -> String,
) {
    let input_bits: String = vector.iter().map(|&b| char::from(b'0' + b as u8)).collect();
    human.line(format!("{index:>6} {input_bits} -> {}", finals(nl)));
}

fn write_vcd(path: Option<String>, recorder: Option<VcdRecorder>) -> Result<(), CliError> {
    if let (Some(path), Some(recorder)) = (path, recorder) {
        std::fs::write(&path, recorder.render())
            .map_err(|e| CliError::class(format!("writing {path}: {e}"), FailureClass::Usage))?;
        eprintln!("wrote {path}");
    }
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn simulate_single(
    nl: &Netlist,
    engine: Engine,
    limits: &ResourceLimits,
    word: WordWidth,
    stimulus: &[Vec<bool>],
    vcd_path: Option<String>,
    telemetry: Option<&Telemetry>,
    human: &HumanOut,
) -> Result<(), CliError> {
    let noop = unit_delay_sim::netlist::NoopProbe;
    let probe: &dyn Probe = telemetry.map_or(&noop, |t| t as &dyn Probe);
    let mut sim = {
        let _span = telemetry.map(|t| t.span("compile"));
        build_engine_with_limits_probed_word(nl, engine, limits, probe, word)
            .map_err(|e| CliError::from(e.with_circuit(nl.name())))?
    };
    if let Some(t) = telemetry {
        t.label("engine", engine.to_string());
    }
    let mut recorder = vcd_path
        .as_ref()
        .map(|_| VcdRecorder::new(nl, nl.primary_outputs().to_vec()));
    print_header(nl, engine, human);
    {
        let _span = telemetry.map(|t| t.span("simulate"));
        for (index, vector) in stimulus.iter().enumerate() {
            sim.simulate_vector(vector);
            if let Some(t) = telemetry {
                t.add("run.vectors", 1);
            }
            if let Some(recorder) = recorder.as_mut() {
                recorder.record(sim.as_ref());
            }
            print_row(nl, index, vector, human, |nl| {
                nl.primary_outputs()
                    .iter()
                    .map(|&n| char::from(b'0' + sim.final_value(n) as u8))
                    .collect()
            });
        }
    }
    if let Some(t) = telemetry {
        for (name, value) in sim.run_counters() {
            t.add(name, value);
        }
    }
    write_vcd(vcd_path, recorder)
}

#[allow(clippy::too_many_arguments)]
fn simulate_guarded(
    nl: &Netlist,
    limits: ResourceLimits,
    chain: &[Engine],
    word: WordWidth,
    stimulus: &[Vec<bool>],
    vcd_path: Option<String>,
    crosscheck: bool,
    telemetry: Option<&Telemetry>,
    human: &HumanOut,
) -> Result<(), CliError> {
    let mut guarded = {
        let _span = telemetry.map(|t| t.span("compile"));
        let factory = Box::new(DefaultEngineFactory::with_word(word));
        match telemetry {
            Some(t) => {
                GuardedSimulator::with_factory_telemetry(nl, limits, chain, factory, t.clone())
            }
            None => GuardedSimulator::with_factory(nl, limits, chain, factory),
        }
        .map_err(|e| CliError::from(e.with_circuit(nl.name())))?
    };
    if let Some(t) = telemetry {
        t.label("engine", guarded.active_engine().to_string());
    }
    report_new_fallbacks(&guarded, 0);
    let mut recorder = vcd_path
        .as_ref()
        .map(|_| VcdRecorder::new(nl, nl.primary_outputs().to_vec()));
    print_header(nl, guarded.active_engine(), human);
    let mut seen_fallbacks = guarded.fallbacks().len();
    {
        let _span = telemetry.map(|t| t.span("simulate"));
        for (index, vector) in stimulus.iter().enumerate() {
            guarded
                .simulate_vector(vector)
                .map_err(|e| CliError::from(e.with_circuit(nl.name())))?;
            if let Some(t) = telemetry {
                t.add("run.vectors", 1);
            }
            seen_fallbacks = report_new_fallbacks(&guarded, seen_fallbacks);
            if let Some(recorder) = recorder.as_mut() {
                recorder.record(guarded.active_simulator());
            }
            print_row(nl, index, vector, human, |nl| {
                nl.primary_outputs()
                    .iter()
                    .map(|&n| char::from(b'0' + guarded.final_value(n) as u8))
                    .collect()
            });
        }
    }
    if let Some(t) = telemetry {
        // The chain may have degraded mid-run; record who survived.
        t.label("engine", guarded.active_engine().to_string());
        for (name, value) in guarded.run_counters() {
            t.add(name, value);
        }
    }
    if crosscheck {
        let _span = telemetry.map(|t| t.span("crosscheck"));
        guarded
            .crosscheck_baseline()
            .map_err(|e| CliError::from(e.with_circuit(nl.name())))?;
        eprintln!(
            "cross-check: {} agrees with the event-driven baseline over {} vectors",
            guarded.active_engine(),
            guarded.vectors_run()
        );
    }
    eprintln!(
        "engine: {} ({} fallback{} fired)",
        guarded.active_engine(),
        guarded.fallbacks().len(),
        if guarded.fallbacks().len() == 1 {
            ""
        } else {
            "s"
        }
    );
    write_vcd(vcd_path, recorder)
}

/// `--jobs N`: shards the stream across worker threads (each owning a
/// fork of a guarded engine, seeded by the zero-delay prepass) and
/// prints the assembled rows — byte-identical to the sequential paths
/// above for any N. With `--crosscheck`, re-runs sequentially and
/// verifies the batch output row by row.
#[allow(clippy::too_many_arguments)]
fn simulate_batch(
    nl: &Netlist,
    limits: ResourceLimits,
    chain: &[Engine],
    word: WordWidth,
    stimulus: &[Vec<bool>],
    jobs: usize,
    crosscheck: bool,
    telemetry: Option<&Telemetry>,
    probe: Option<&dyn BatchProbe>,
    human: &HumanOut,
) -> Result<(), CliError> {
    let attach = |e: SimError| CliError::from(e.with_circuit(nl.name()));
    let prototype = {
        let _span = telemetry.map(|t| t.span("compile"));
        let factory = Box::new(DefaultEngineFactory::with_word(word));
        match telemetry {
            Some(t) => {
                GuardedSimulator::with_factory_telemetry(nl, limits, chain, factory, t.clone())
            }
            None => GuardedSimulator::with_factory(nl, limits, chain, factory),
        }
        .map_err(attach)?
    };
    if let Some(t) = telemetry {
        t.label("engine", prototype.active_engine().to_string());
        t.label("jobs", jobs.to_string());
    }
    report_new_fallbacks(&prototype, 0);
    print_header(nl, prototype.active_engine(), human);
    let out = {
        let _span = telemetry.map(|t| t.span("simulate"));
        run_batch_observed(
            nl,
            &prototype,
            stimulus,
            jobs,
            telemetry,
            probe.unwrap_or(&NoopBatchProbe),
        )
        .map_err(attach)?
    };
    if let Some(t) = telemetry {
        t.add("run.vectors", out.rows.len() as u64);
    }
    for (index, (vector, row)) in stimulus.iter().zip(&out.rows).enumerate() {
        print_row(nl, index, vector, human, |_| {
            row.iter().map(|&b| char::from(b'0' + b as u8)).collect()
        });
    }
    for shard in &out.shards {
        eprintln!(
            "shard {}: vectors {}..{} on {} ({} fallback{}, {:.1} ms)",
            shard.index,
            shard.start,
            shard.start + shard.vectors,
            shard.engine,
            shard.fallbacks,
            if shard.fallbacks == 1 { "" } else { "s" },
            shard.wall_ns as f64 / 1e6
        );
    }
    if crosscheck {
        let _span = telemetry.map(|t| t.span("crosscheck"));
        let factory = Box::new(DefaultEngineFactory::with_word(word));
        let mut reference =
            GuardedSimulator::with_factory(nl, limits, chain, factory).map_err(attach)?;
        for (index, vector) in stimulus.iter().enumerate() {
            reference.simulate_vector(vector).map_err(attach)?;
            let row: Vec<bool> = nl
                .primary_outputs()
                .iter()
                .map(|&po| reference.final_value(po))
                .collect();
            if row != out.rows[index] {
                return Err(CliError::class(
                    format!(
                        "batch output diverges from the sequential run at vector {index} \
                         (--jobs {jobs})"
                    ),
                    FailureClass::Mismatch,
                ));
            }
        }
        eprintln!(
            "cross-check: batch (--jobs {jobs}) matches the sequential run over {} vectors",
            stimulus.len()
        );
    }
    Ok(())
}

/// `udsim profile`: simulates a random stream with every net monitored
/// and reports toggle activity — total toggles, the activity factor
/// (toggles / (nets × depth × vectors)), the hottest nets, and per-level
/// / per-time histograms. The profile is a pure function of circuit and
/// stimulus: byte-identical across engines, word widths and `--jobs`.
fn profile(args: &[String]) -> Result<(), CliError> {
    let mut file = None;
    let mut engine: Option<Engine> = None;
    let mut vectors = 256usize;
    let mut seed = 1990u64;
    let mut jobs: Option<usize> = None;
    let mut word = WordWidth::default();
    let mut top = 10usize;
    let mut json_path: Option<String> = None;
    let mut trace_path: Option<String> = None;
    let mut progress_path: Option<String> = None;
    let mut progress_interval: Option<Duration> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--engine" => {
                engine = Some(parse_engine(iter.next().ok_or("--engine needs a value")?)?)
            }
            "--vectors" => {
                vectors = iter
                    .next()
                    .ok_or("--vectors needs a value")?
                    .parse()
                    .map_err(|e| CliError::usage(format!("--vectors: {e}")))?;
            }
            "--seed" => {
                seed = iter
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|e| CliError::usage(format!("--seed: {e}")))?;
            }
            "--jobs" => {
                let value = iter.next().ok_or("--jobs needs a worker count")?;
                let parsed: usize = value
                    .parse()
                    .map_err(|e| CliError::usage(format!("--jobs: {e}")))?;
                if parsed == 0 {
                    return Err(CliError::usage("--jobs: worker count must be at least 1"));
                }
                jobs = Some(parsed);
            }
            "--word" => {
                let value = iter.next().ok_or("--word needs a width (32 or 64)")?;
                word = WordWidth::parse(value)
                    .ok_or_else(|| CliError::usage(format!("--word: `{value}` is not 32 or 64")))?;
            }
            "--top" => {
                top = iter
                    .next()
                    .ok_or("--top needs a count")?
                    .parse()
                    .map_err(|e| CliError::usage(format!("--top: {e}")))?;
            }
            "--json" => {
                json_path = Some(iter.next().ok_or("--json needs a path (or `-`)")?.clone())
            }
            "--trace" => {
                trace_path = Some(iter.next().ok_or("--trace needs a path (or `-`)")?.clone())
            }
            "--progress" => {
                progress_path = Some(
                    iter.next()
                        .ok_or("--progress needs a path (or `-`)")?
                        .clone(),
                )
            }
            "--progress-interval" => {
                progress_interval = Some(parse_progress_interval(
                    iter.next()
                        .ok_or("--progress-interval needs milliseconds")?,
                )?)
            }
            other if file.is_none() && (other == "-" || !other.starts_with('-')) => {
                file = Some(other.to_owned());
            }
            other => return Err(CliError::usage(format!("unexpected argument `{other}`"))),
        }
    }
    let file = file.ok_or("missing FILE.bench")?;
    if progress_path.is_some() && jobs.is_none() {
        return Err(CliError::usage(
            "--progress streams batch heartbeats and requires --jobs",
        ));
    }
    if progress_interval.is_some() && progress_path.is_none() {
        return Err(CliError::usage(
            "--progress-interval paces the --progress stream and requires it",
        ));
    }
    let human = stream_contract(&[
        ("--json", json_path.as_deref()),
        ("--trace", trace_path.as_deref()),
        ("--progress", progress_path.as_deref()),
    ])?;
    let telemetry = trace_path.as_ref().map(|_| Telemetry::new());
    let nl = {
        let _span = telemetry.as_ref().map(|t| t.span("parse"));
        load(&file)?
    };
    let levels = levelize(&nl)
        .map_err(|e| CliError::class(format!("{file}: {e}"), FailureClass::Structural))?;
    let engine = engine.unwrap_or(Engine::ParallelPathTracingTrimming);
    if let Some(t) = &telemetry {
        t.label("command", "profile");
        t.label("circuit", nl.name());
        t.label("engine", engine.to_string());
        t.label("seed", seed.to_string());
        t.label("vectors", vectors.to_string());
        record_build_info(t, word.bits());
    }
    let stimulus: Vec<Vec<bool>> = RandomVectors::new(nl.primary_inputs().len(), seed)
        .take(vectors)
        .collect();
    let limits = ResourceLimits::unlimited();
    let build = || {
        let _span = telemetry.as_ref().map(|t| t.span("compile"));
        // The monitoring factory keeps every net observable, whichever
        // engine measures — that is what makes the totals engine-exact.
        let factory = Box::new(MonitoringEngineFactory::with_word(word));
        match &telemetry {
            Some(t) => {
                GuardedSimulator::with_factory_telemetry(&nl, limits, &[engine], factory, t.clone())
            }
            None => GuardedSimulator::with_factory(&nl, limits, &[engine], factory),
        }
        .map_err(|e| CliError::from(e.with_circuit(nl.name())))
    };

    let profiler = if let Some(jobs) = jobs {
        let prototype = build()?;
        let observer = BatchActivityObserver::new(&nl, &levels, stimulus.len(), jobs);
        let progress = progress_sink(progress_path.as_deref(), progress_interval)?;
        let mut probes: Vec<&dyn BatchProbe> = vec![&observer];
        if let Some(progress) = &progress {
            probes.push(progress);
        }
        let fanout = FanoutProbe::new(probes);
        {
            let _span = telemetry.as_ref().map(|t| t.span("simulate"));
            run_batch_observed(
                &nl,
                &prototype,
                &stimulus,
                jobs,
                telemetry.as_ref(),
                &fanout,
            )
            .map_err(|e| CliError::from(e.with_circuit(nl.name())))?;
        }
        observer.merged()
    } else {
        let mut guard = build()?;
        let mut profiler = ActivityProfiler::for_netlist(&nl, &levels);
        let _span = telemetry.as_ref().map(|t| t.span("simulate"));
        for vector in &stimulus {
            guard
                .simulate_vector(vector)
                .map_err(|e| CliError::from(e.with_circuit(nl.name())))?;
            profiler.record_vector(guard.active_simulator());
        }
        profiler
    };

    let mut report = profiler.report(&nl, &levels, top);
    report.label("engine", engine.to_string());
    report.label("word", word.bits().to_string());
    report.label("jobs", jobs.unwrap_or(1).to_string());
    report.label("seed", seed.to_string());

    human.line(format!(
        "# {}: {} nets, depth {}, {} vectors on {engine}",
        nl.name(),
        report.nets,
        report.depth,
        report.vectors
    ));
    human.line(format!(
        "total toggles:   {}  (activity factor {:.6})",
        report.total_toggles, report.activity_factor
    ));
    if report.unobserved_nets > 0 {
        human.line(format!("unobserved nets: {}", report.unobserved_nets));
    }
    human.line(format!("hottest {} nets:", report.hot_nets.len()));
    for hot in &report.hot_nets {
        human.line(format!(
            "  {:>10} toggles  level {:>3}  {}",
            hot.toggles, hot.level, hot.net
        ));
    }

    if let Some(path) = &json_path {
        let mut rendered = report.to_json().render();
        rendered.push('\n');
        write_text(path, &rendered)
            .map_err(|e| CliError::class(format!("writing {path}: {e}"), FailureClass::Usage))?;
    }
    if let (Some(path), Some(telemetry)) = (&trace_path, &telemetry) {
        write_trace(path, telemetry)?;
    }
    Ok(())
}

/// `udsim hotspots`: runs a random stream with per-level profiling on
/// and reports where the simulate loop's time goes — self-time, word
/// ops, and gate evaluations per netlist level, with the engine's
/// static per-level instruction counts alongside. `--json` writes the
/// `uds-hotspot-v1` document; `--folded` writes collapsed-stack lines
/// (`engine;level_K NANOS`) that flamegraph tools ingest directly.
fn hotspots(args: &[String]) -> Result<(), CliError> {
    let mut file = None;
    let mut engine: Option<Engine> = None;
    let mut vectors = 256usize;
    let mut seed = 1990u64;
    let mut jobs = 1usize;
    let mut word = WordWidth::default();
    let mut json_path: Option<String> = None;
    let mut folded_path: Option<String> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--engine" => {
                engine = Some(parse_engine(iter.next().ok_or("--engine needs a value")?)?)
            }
            "--vectors" => {
                vectors = iter
                    .next()
                    .ok_or("--vectors needs a value")?
                    .parse()
                    .map_err(|e| CliError::usage(format!("--vectors: {e}")))?;
            }
            "--seed" => {
                seed = iter
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|e| CliError::usage(format!("--seed: {e}")))?;
            }
            "--jobs" => {
                let value = iter.next().ok_or("--jobs needs a worker count")?;
                jobs = value
                    .parse()
                    .map_err(|e| CliError::usage(format!("--jobs: {e}")))?;
                if jobs == 0 {
                    return Err(CliError::usage("--jobs: worker count must be at least 1"));
                }
            }
            "--word" => {
                let value = iter.next().ok_or("--word needs a width (32 or 64)")?;
                word = WordWidth::parse(value)
                    .ok_or_else(|| CliError::usage(format!("--word: `{value}` is not 32 or 64")))?;
            }
            "--json" => {
                json_path = Some(iter.next().ok_or("--json needs a path (or `-`)")?.clone())
            }
            "--folded" => {
                folded_path = Some(iter.next().ok_or("--folded needs a path (or `-`)")?.clone())
            }
            other if file.is_none() && (other == "-" || !other.starts_with('-')) => {
                file = Some(other.to_owned());
            }
            other => return Err(CliError::usage(format!("unexpected argument `{other}`"))),
        }
    }
    let file = file.ok_or("missing FILE.bench")?;
    let human = stream_contract(&[
        ("--json", json_path.as_deref()),
        ("--folded", folded_path.as_deref()),
    ])?;
    let nl = load(&file)?;
    let engine = engine.unwrap_or(Engine::ParallelPathTracingTrimming);
    let stimulus: Vec<Vec<bool>> = RandomVectors::new(nl.primary_inputs().len(), seed)
        .take(vectors)
        .collect();
    let limits = ResourceLimits::unlimited();
    let factory = Box::new(DefaultEngineFactory::with_word(word));
    let prototype = GuardedSimulator::with_factory(&nl, limits, &[engine], factory)
        .map_err(|e| CliError::from(e.with_circuit(nl.name())))?;
    let report =
        unit_delay_sim::core::hotspot::collect(&nl, &prototype, &stimulus, jobs, word.bits())
            .map_err(|e| CliError::from(e.with_circuit(nl.name())))?;

    let total = report.measured.total();
    human.line(format!(
        "# {}: {} vectors on {} (word {}, jobs {})",
        nl.name(),
        report.vectors,
        report.engine,
        report.word_bits,
        report.jobs
    ));
    human.line(format!(
        "simulate span: {:.3} ms, attributed {:.3} ms ({:.1}%)",
        report.span_ns as f64 / 1e6,
        total.self_ns as f64 / 1e6,
        if report.span_ns > 0 {
            total.self_ns as f64 / report.span_ns as f64 * 100.0
        } else {
            0.0
        }
    ));
    human.line("level  self_ms  share  word_ops  gate_evals".to_owned());
    for (level, cost) in report.measured.levels.iter().enumerate() {
        if cost.self_ns == 0 && cost.word_ops == 0 && cost.gate_evals == 0 {
            continue;
        }
        human.line(format!(
            "{level:>5}  {:>7.3}  {:>4.1}%  {:>8}  {:>10}",
            cost.self_ns as f64 / 1e6,
            if total.self_ns > 0 {
                cost.self_ns as f64 / total.self_ns as f64 * 100.0
            } else {
                0.0
            },
            cost.word_ops,
            cost.gate_evals
        ));
    }

    if let Some(path) = &json_path {
        let mut rendered = report.to_json().render();
        rendered.push('\n');
        write_text(path, &rendered)
            .map_err(|e| CliError::class(format!("writing {path}: {e}"), FailureClass::Usage))?;
    }
    if let Some(path) = &folded_path {
        write_text(path, &report.render_folded())
            .map_err(|e| CliError::class(format!("writing {path}: {e}"), FailureClass::Usage))?;
    }
    Ok(())
}

/// Reports fallbacks fired since `seen` to stderr; returns the new count.
fn report_new_fallbacks(guarded: &GuardedSimulator, seen: usize) -> usize {
    let fired = guarded.fallbacks();
    for fallback in &fired[seen..] {
        eprintln!(
            "fallback: {} abandoned ({}): {}",
            fallback.from,
            fallback.error.class(),
            fallback.error
        );
    }
    fired.len()
}

fn stats(args: &[String]) -> Result<(), CliError> {
    let file = args.first().ok_or("missing FILE.bench")?;
    let nl = load(file)?;
    let combinational = if nl.is_sequential() {
        let cut = unit_delay_sim::netlist::sequential::cut_flip_flops(&nl)
            .map_err(|e| CliError::class(e.to_string(), FailureClass::Structural))?;
        println!("sequential circuit: {} flip-flops cut", cut.state_bits());
        cut.combinational
    } else {
        nl
    };
    let stats = CircuitStats::compute(&combinational)
        .map_err(|e| CliError::class(e.to_string(), FailureClass::Structural))?;
    println!("{stats}");

    let pcset = PcSetSimulator::compile(&combinational)
        .map_err(|e| CliError::class(e.to_string(), FailureClass::Structural))?;
    let program = pcset.stats();
    println!(
        "pc-set: {} variables, {} gate simulations, {} retention copies",
        program.variables, program.gate_simulations, program.retention_copies
    );
    for optimization in [Optimization::None, Optimization::PathTracingTrimming] {
        let sim = ParallelSimulator::compile(&combinational, optimization)
            .map_err(|e| CliError::class(e.to_string(), FailureClass::Structural))?;
        let s = sim.stats();
        println!(
            "parallel ({optimization}): {} word ops, {} retained shifts, {} arena words",
            s.word_ops, s.retained_shifts, s.arena_words
        );
    }
    Ok(())
}

fn cone(args: &[String]) -> Result<(), CliError> {
    let file = args.first().ok_or("missing FILE.bench")?;
    let roots = &args[1..];
    if roots.is_empty() {
        return Err(CliError::usage("missing OUTPUT_NET name(s)"));
    }
    let nl = load(file)?;
    let root_ids: Vec<_> = roots
        .iter()
        .map(|name| {
            nl.find_net(name)
                .ok_or_else(|| CliError::usage(format!("no net named `{name}` in {file}")))
        })
        .collect::<Result<_, _>>()?;
    let cone = unit_delay_sim::netlist::cone::extract(&nl, &root_ids);
    eprintln!(
        "# cone of {}: {} of {} gates",
        roots.join(", "),
        cone.netlist.gate_count(),
        nl.gate_count()
    );
    print!("{}", bench_format::write(&cone.netlist));
    Ok(())
}

/// `udsim serve`: the long-running simulation daemon. Binds `--addr`
/// (`:0` picks an ephemeral port, announced on stderr), serves until a
/// shutdown signal or `/quitquitquit`, drains in-flight requests, and
/// only then writes the final `--stats` snapshot — so the snapshot is
/// the complete story of the daemon's lifetime.
fn serve(args: &[String]) -> Result<(), CliError> {
    let mut addr = "127.0.0.1:1990".to_owned();
    let mut cache_capacity = 64usize;
    let mut allow_quit = false;
    let mut reqlog_path: Option<String> = None;
    let mut stats_path: Option<String> = None;
    let mut trace_path: Option<String> = None;
    let mut word = WordWidth::default();
    let mut jobs = 1usize;
    let mut limits = ResourceLimits::production();
    let mut config = ServeConfig::default();
    let parse_num = |flag: &str, value: &str| -> Result<u64, CliError> {
        value
            .parse()
            .map_err(|e| CliError::usage(format!("{flag}: {e}")))
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--addr" => addr = iter.next().ok_or("--addr needs HOST:PORT")?.clone(),
            "--cache" => {
                cache_capacity = iter
                    .next()
                    .ok_or("--cache needs an entry count")?
                    .parse()
                    .map_err(|e| CliError::usage(format!("--cache: {e}")))?;
            }
            "--allow-quit" => allow_quit = true,
            "--reqlog" => {
                reqlog_path = Some(iter.next().ok_or("--reqlog needs a path (or `-`)")?.clone())
            }
            "--stats" => {
                stats_path = Some(iter.next().ok_or("--stats needs a path (or `-`)")?.clone())
            }
            "--trace" => {
                trace_path = Some(iter.next().ok_or("--trace needs a path (or `-`)")?.clone())
            }
            "--budget" => limits = parse_budget(iter.next().ok_or("--budget needs a spec")?)?,
            "--word" => {
                let value = iter.next().ok_or("--word needs a width (32 or 64)")?;
                word = WordWidth::parse(value)
                    .ok_or_else(|| CliError::usage(format!("--word: `{value}` is not 32 or 64")))?;
            }
            "--jobs" => {
                let value = iter.next().ok_or("--jobs needs a worker count")?;
                jobs = value
                    .parse()
                    .map_err(|e| CliError::usage(format!("--jobs: {e}")))?;
                if jobs == 0 {
                    return Err(CliError::usage("--jobs: worker count must be at least 1"));
                }
            }
            "--workers" => {
                let value = iter.next().ok_or("--workers needs a thread count")?;
                config.workers = parse_num("--workers", value)? as usize;
            }
            "--queue" => {
                let value = iter.next().ok_or("--queue needs a depth")?;
                config.queue_depth = parse_num("--queue", value)?.max(1) as usize;
            }
            "--read-timeout-ms" => {
                let value = iter.next().ok_or("--read-timeout-ms needs milliseconds")?;
                config.read_timeout = Duration::from_millis(parse_num("--read-timeout-ms", value)?);
            }
            "--idle-timeout-ms" => {
                let value = iter.next().ok_or("--idle-timeout-ms needs milliseconds")?;
                config.idle_timeout = Duration::from_millis(parse_num("--idle-timeout-ms", value)?);
            }
            "--keep-alive-max" => {
                let value = iter
                    .next()
                    .ok_or("--keep-alive-max needs a request count")?;
                config.keep_alive_max = parse_num("--keep-alive-max", value)?.max(1);
            }
            "--request-timeout-ms" => {
                let value = iter
                    .next()
                    .ok_or("--request-timeout-ms needs milliseconds")?;
                let ms = parse_num("--request-timeout-ms", value)?;
                config.request_timeout = (ms > 0).then(|| Duration::from_millis(ms));
            }
            "--rate-limit" => {
                let value = iter.next().ok_or("--rate-limit needs requests/second")?;
                config.rate_limit_per_s = parse_num("--rate-limit", value)? as u32;
            }
            "--max-jobs" => {
                let value = iter.next().ok_or("--max-jobs needs a job count")?;
                config.max_jobs = parse_num("--max-jobs", value)?.max(1) as usize;
            }
            "--job-ttl-s" => {
                let value = iter.next().ok_or("--job-ttl-s needs seconds")?;
                config.job_ttl = Duration::from_secs(parse_num("--job-ttl-s", value)?);
            }
            "--hotspots" => config.hotspots = true,
            other => return Err(CliError::usage(format!("unexpected argument `{other}`"))),
        }
    }
    // The daemon's own narration always goes to stderr; stdout belongs
    // to whichever stream flag claims it. The contract still enforces
    // the at-most-one-`-` rule between --reqlog, --stats, and --trace.
    stream_contract(&[
        ("--reqlog", reqlog_path.as_deref()),
        ("--stats", stats_path.as_deref()),
        ("--trace", trace_path.as_deref()),
    ])?;
    let telemetry = Telemetry::new();
    telemetry.label("command", "serve");
    record_build_info(&telemetry, word.bits());
    let reqlog = reqlog_path
        .as_deref()
        .map(|dest| {
            open_sink(dest)
                .map_err(|e| CliError::class(format!("opening {dest}: {e}"), FailureClass::Usage))
        })
        .transpose()?;
    let config = ServeConfig {
        cache_capacity,
        allow_quit,
        limits,
        default_word: word,
        default_jobs: jobs,
        ..config
    };
    install_signal_handlers();
    let mut server = SimServer::bind(&*addr, config, telemetry.clone(), reqlog)
        .map_err(|e| CliError::class(format!("binding {addr}: {e}"), FailureClass::Usage))?;
    if let Some(dest) = trace_path.as_deref() {
        let sink = open_sink(dest)
            .map_err(|e| CliError::class(format!("opening {dest}: {e}"), FailureClass::Usage))?;
        server.set_trace(sink);
    }
    let local = server
        .local_addr()
        .map_err(|e| CliError::class(format!("binding {addr}: {e}"), FailureClass::Usage))?;
    eprintln!("udsim: listening on http://{local}");
    // Self-report the host's perf class before serving: calibrate the
    // machine and warm up on a canonical netlist, then publish the
    // result as the `uds_perf_class` gauge family and a build_info
    // label. Early connections simply wait in the accept backlog, so
    // `/metrics` carries the class from the first served request on.
    // The announcement above must stay the first stderr line — probes
    // and tests read it to learn the bound port.
    let perf = measure_perf();
    record_perf_class(&telemetry, &perf);
    eprintln!(
        "udsim: perf class {} (score {:.3}, warmup {:.0} vectors/s)",
        perf.class.name(),
        perf.calibration.score,
        perf.warmup_vectors_per_s
    );
    server
        .run()
        .map_err(|e| CliError::class(format!("serving on {local}: {e}"), FailureClass::Usage))?;
    if let Some(path) = &stats_path {
        write_stats(path, &telemetry)?;
    }
    eprintln!("udsim: drained, goodbye");
    Ok(())
}

/// `udsim loadgen`: drive a running daemon with a client fleet and
/// report per-status counts plus latency percentiles
/// (`uds-loadgen-v1`). Closed loop by default; `--rate` switches to
/// paced open-loop arrivals. `--bench` turns the campaign into real
/// `POST /simulate` work (random stimulus built client-side);
/// otherwise it probes `GET /healthz`-style read paths.
fn loadgen(args: &[String]) -> Result<(), CliError> {
    use unit_delay_sim::core::telemetry::json::Json;

    let mut config = LoadgenConfig::default();
    let mut bench_path: Option<String> = None;
    let mut path_override: Option<String> = None;
    let mut vectors = 16u64;
    let mut seed = 1990u64;
    let mut jobs: Option<u64> = None;
    let mut json_path: Option<String> = None;
    let parse_num = |flag: &str, value: &str| -> Result<u64, CliError> {
        value
            .parse()
            .map_err(|e| CliError::usage(format!("{flag}: {e}")))
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--addr" => config.addr = iter.next().ok_or("--addr needs HOST:PORT")?.clone(),
            "--path" => {
                path_override = Some(iter.next().ok_or("--path needs a request path")?.clone())
            }
            "--bench" => bench_path = Some(iter.next().ok_or("--bench needs FILE.bench")?.clone()),
            "--vectors" => {
                vectors = parse_num("--vectors", iter.next().ok_or("--vectors needs a count")?)?;
            }
            "--seed" => {
                seed = parse_num("--seed", iter.next().ok_or("--seed needs a value")?)?;
            }
            "--jobs" => {
                jobs = Some(parse_num(
                    "--jobs",
                    iter.next().ok_or("--jobs needs a count")?,
                )?);
            }
            "--concurrency" => {
                config.concurrency = parse_num(
                    "--concurrency",
                    iter.next().ok_or("--concurrency needs a worker count")?,
                )?
                .max(1) as usize;
            }
            "--rate" => {
                config.rate_per_s =
                    parse_num("--rate", iter.next().ok_or("--rate needs requests/second")?)? as u32;
            }
            "--duration-ms" => {
                config.duration = Duration::from_millis(parse_num(
                    "--duration-ms",
                    iter.next().ok_or("--duration-ms needs milliseconds")?,
                )?);
            }
            "--json" => {
                json_path = Some(iter.next().ok_or("--json needs a path (or `-`)")?.clone())
            }
            other => return Err(CliError::usage(format!("unexpected argument `{other}`"))),
        }
    }
    let human = stream_contract(&[("--json", json_path.as_deref())])?;

    if let Some(bench) = &bench_path {
        // Validate the netlist client-side (a typo'd path should fail
        // here, not as a storm of 400s), then ship the raw text.
        let nl = load(bench)?;
        let text = if bench == "-" {
            return Err(CliError::usage("--bench cannot read stdin for loadgen"));
        } else {
            std::fs::read_to_string(bench).map_err(|e| {
                CliError::class(format!("reading {bench}: {e}"), FailureClass::Parse)
            })?
        };
        let mut members = vec![
            ("bench".to_owned(), Json::Str(text)),
            ("name".to_owned(), Json::Str(nl.name().to_owned())),
            (
                "random".to_owned(),
                Json::obj([("count", Json::UInt(vectors)), ("seed", Json::UInt(seed))]),
            ),
        ];
        if let Some(jobs) = jobs {
            members.push(("jobs".to_owned(), Json::UInt(jobs)));
        }
        config.body = Json::Obj(members).render();
        config.method = "POST".to_owned();
        config.path = path_override.unwrap_or_else(|| "/simulate".to_owned());
    } else if let Some(path) = path_override {
        config.path = path;
    }

    let report = run_loadgen(&config);
    human.line(format!(
        "{} loop: {} requests, {} transport errors in {:.2}s ({:.1} req/s)",
        report.mode,
        report.requests,
        report.errors,
        report.elapsed.as_secs_f64(),
        report.throughput_per_s()
    ));
    for (status, count) in &report.status_counts {
        human.line(format!("  {status}: {count}"));
    }
    human.line(format!(
        "  latency p50 {:.2}ms  p90 {:.2}ms  p99 {:.2}ms  max {:.2}ms",
        report.latency_ns["p50"] as f64 / 1e6,
        report.latency_ns["p90"] as f64 / 1e6,
        report.latency_ns["p99"] as f64 / 1e6,
        report.latency_ns["max"] as f64 / 1e6,
    ));
    if let Some(server) = &report.server {
        let class = server
            .perf_class_name
            .as_deref()
            .unwrap_or("unknown")
            .to_owned();
        human.line(format!("  server perf class: {class}"));
        for sample in &server.engine_vectors_per_s {
            human.line(format!(
                "  server {} w{}: {:.0} vectors/s (rolling)",
                sample.engine, sample.word_bits, sample.vectors_per_s
            ));
        }
    }
    if let Some(dest) = &json_path {
        let mut text = report.to_json().render();
        text.push('\n');
        write_text(dest, &text)
            .map_err(|e| CliError::class(format!("writing {dest}: {e}"), FailureClass::Usage))?;
    }
    Ok(())
}

fn codegen(args: &[String]) -> Result<(), CliError> {
    let mut file = None;
    let mut technique = "parallel".to_owned();
    let mut optimization = Optimization::None;
    let mut stats_path: Option<String> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--technique" => {
                technique = iter.next().ok_or("--technique needs a value")?.clone();
            }
            "--opt" => {
                optimization = match iter.next().ok_or("--opt needs a value")?.as_str() {
                    "none" => Optimization::None,
                    "trim" => Optimization::Trimming,
                    "pt" => Optimization::PathTracing,
                    "pt-trim" => Optimization::PathTracingTrimming,
                    "cb" => Optimization::CycleBreaking,
                    other => {
                        return Err(CliError::usage(format!("unknown optimization `{other}`")))
                    }
                };
            }
            "--stats" => {
                stats_path = Some(iter.next().ok_or("--stats needs a path (or `-`)")?.clone())
            }
            other if file.is_none() && (other == "-" || !other.starts_with('-')) => {
                file = Some(other.to_owned());
            }
            other => return Err(CliError::usage(format!("unexpected argument `{other}`"))),
        }
    }
    let file = file.ok_or("missing FILE.bench")?;
    let telemetry = stats_path.as_ref().map(|_| Telemetry::new());
    // With `--stats -` the JSON owns stdout; the generated C moves to
    // stderr.
    let human = stream_contract(&[("--stats", stats_path.as_deref())])?;
    let nl = {
        let _span = telemetry.as_ref().map(|t| t.span("parse"));
        load(&file)?
    };
    if let Some(t) = &telemetry {
        t.label("command", "codegen");
        t.label("circuit", nl.name());
        t.label("technique", technique.clone());
        record_build_info(t, WordWidth::default().bits());
    }
    let noop = unit_delay_sim::netlist::NoopProbe;
    let probe: &dyn Probe = telemetry.as_ref().map_or(&noop, |t| t as &dyn Probe);
    let limits = ResourceLimits::unlimited();
    let emitted = {
        let _span = telemetry.as_ref().map(|t| t.span("compile"));
        match technique.as_str() {
            "pc-set" | "pcset" => {
                let sim = PcSetSimulator::compile_probed(&nl, &limits, probe)
                    .map_err(|e| CliError::class(e.to_string(), FailureClass::Structural))?;
                pcset::codegen_c::emit(&nl, &sim)
                    .map_err(|e| CliError::class(e.to_string(), FailureClass::Structural))?
            }
            "parallel" => {
                let sim = ParallelSimulator::compile_probed(&nl, optimization, &limits, probe)
                    .map_err(|e| CliError::class(e.to_string(), FailureClass::Structural))?;
                parallel::codegen_c::emit(&nl, &sim)
                    .map_err(|e| CliError::class(e.to_string(), FailureClass::Structural))?
            }
            other => return Err(CliError::usage(format!("unknown technique `{other}`"))),
        }
    };
    if human.to_stderr {
        eprint!("{emitted}");
    } else {
        print!("{emitted}");
    }
    if let (Some(path), Some(telemetry)) = (stats_path, telemetry) {
        write_stats(&path, &telemetry)?;
    }
    Ok(())
}
