//! `udsim` — command-line front end for the compiled unit-delay
//! simulators.
//!
//! ```text
//! udsim simulate FILE.bench [--engine NAME] [--vectors N] [--seed S] [--vcd OUT.vcd]
//! udsim stats    FILE.bench
//! udsim codegen  FILE.bench [--technique pc-set|parallel] [--opt none|trim|pt|pt-trim|cb]
//! udsim cone     FILE.bench OUTPUT_NET [...]   # fan-in cone as .bench on stdout
//! udsim engines
//! ```
//!
//! `FILE.bench` is an ISCAS-85/89 `.bench` netlist (`-` reads stdin).
//! Sequential netlists are cut at their flip-flops automatically for
//! `stats`; `simulate` and `codegen` require combinational input.

use std::io::Read as _;
use std::process::ExitCode;

use unit_delay_sim::core::vcd::VcdRecorder;
use unit_delay_sim::core::vectors::RandomVectors;
use unit_delay_sim::core::{build_simulator, Engine};
use unit_delay_sim::netlist::stats::CircuitStats;
use unit_delay_sim::parallel::{self, Optimization, ParallelSimulator};
use unit_delay_sim::pcset::{self, PcSetSimulator};
use unit_delay_sim::prelude::{bench_format, Netlist};

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("udsim: {message}");
            ExitCode::from(2)
        }
    }
}

fn run() -> Result<(), String> {
    let mut args = std::env::args().skip(1);
    let command = args.next().ok_or_else(usage)?;
    let rest: Vec<String> = args.collect();
    match command.as_str() {
        "simulate" => simulate(&rest),
        "stats" => stats(&rest),
        "codegen" => codegen(&rest),
        "cone" => cone(&rest),
        "engines" => {
            for engine in Engine::ALL {
                println!("{engine}");
            }
            Ok(())
        }
        "--help" | "-h" | "help" => {
            eprintln!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{}", usage())),
    }
}

fn usage() -> String {
    "usage:\n  udsim simulate FILE.bench [--engine NAME] [--vectors N] [--seed S] [--vcd OUT.vcd]\n  \
     udsim stats FILE.bench\n  \
     udsim codegen FILE.bench [--technique pc-set|parallel] [--opt none|trim|pt|pt-trim|cb]\n  \
     udsim cone FILE.bench OUTPUT_NET [...]\n  \
     udsim engines"
        .to_owned()
}

fn load(path: &str) -> Result<Netlist, String> {
    let text = if path == "-" {
        let mut buffer = String::new();
        std::io::stdin()
            .read_to_string(&mut buffer)
            .map_err(|e| format!("reading stdin: {e}"))?;
        buffer
    } else {
        std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?
    };
    let name = std::path::Path::new(path)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("circuit");
    bench_format::parse(&text, name).map_err(|e| format!("{path}: {e}"))
}

fn parse_engine(name: &str) -> Result<Engine, String> {
    Engine::ALL
        .into_iter()
        .find(|e| e.to_string() == name)
        .ok_or_else(|| {
            let names: Vec<String> = Engine::ALL.iter().map(|e| e.to_string()).collect();
            format!("unknown engine `{name}` (expected one of: {})", names.join(", "))
        })
}

fn simulate(args: &[String]) -> Result<(), String> {
    let mut file = None;
    let mut engine = Engine::ParallelPathTracingTrimming;
    let mut vectors = 16usize;
    let mut seed = 1990u64;
    let mut vcd_path: Option<String> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--engine" => engine = parse_engine(iter.next().ok_or("--engine needs a value")?)?,
            "--vectors" => {
                vectors = iter
                    .next()
                    .ok_or("--vectors needs a value")?
                    .parse()
                    .map_err(|e| format!("--vectors: {e}"))?;
            }
            "--seed" => {
                seed = iter
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--vcd" => vcd_path = Some(iter.next().ok_or("--vcd needs a path")?.clone()),
            other if file.is_none() && (other == "-" || !other.starts_with('-')) => {
                file = Some(other.to_owned());
            }
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    let file = file.ok_or("missing FILE.bench")?;
    let nl = load(&file)?;

    let mut sim = build_simulator(&nl, engine).map_err(|e| e.to_string())?;
    let mut recorder = vcd_path
        .as_ref()
        .map(|_| VcdRecorder::new(&nl, nl.primary_outputs().to_vec()));

    println!(
        "# {}: {} gates, {} inputs, {} outputs, engine {engine}",
        nl.name(),
        nl.gate_count(),
        nl.primary_inputs().len(),
        nl.primary_outputs().len()
    );
    let header: Vec<&str> = nl.primary_outputs().iter().map(|&n| nl.net_name(n)).collect();
    println!("# vector -> {}", header.join(" "));
    for (index, vector) in RandomVectors::new(nl.primary_inputs().len(), seed)
        .take(vectors)
        .enumerate()
    {
        sim.simulate_vector(&vector);
        if let Some(recorder) = recorder.as_mut() {
            recorder.record(sim.as_ref());
        }
        let input_bits: String = vector.iter().map(|&b| char::from(b'0' + b as u8)).collect();
        let output_bits: String = nl
            .primary_outputs()
            .iter()
            .map(|&n| char::from(b'0' + sim.final_value(n) as u8))
            .collect();
        println!("{index:>6} {input_bits} -> {output_bits}");
    }
    if let (Some(path), Some(recorder)) = (vcd_path, recorder) {
        std::fs::write(&path, recorder.render()).map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("wrote {path}");
    }
    Ok(())
}

fn stats(args: &[String]) -> Result<(), String> {
    let file = args.first().ok_or("missing FILE.bench")?;
    let nl = load(file)?;
    let combinational = if nl.is_sequential() {
        let cut = unit_delay_sim::netlist::sequential::cut_flip_flops(&nl)
            .map_err(|e| e.to_string())?;
        println!("sequential circuit: {} flip-flops cut", cut.state_bits());
        cut.combinational
    } else {
        nl
    };
    let stats = CircuitStats::compute(&combinational).map_err(|e| e.to_string())?;
    println!("{stats}");

    let pcset = PcSetSimulator::compile(&combinational).map_err(|e| e.to_string())?;
    let program = pcset.stats();
    println!(
        "pc-set: {} variables, {} gate simulations, {} retention copies",
        program.variables, program.gate_simulations, program.retention_copies
    );
    for optimization in [Optimization::None, Optimization::PathTracingTrimming] {
        let sim = ParallelSimulator::compile(&combinational, optimization)
            .map_err(|e| e.to_string())?;
        let s = sim.stats();
        println!(
            "parallel ({optimization}): {} word ops, {} retained shifts, {} arena words",
            s.word_ops, s.retained_shifts, s.arena_words
        );
    }
    Ok(())
}

fn cone(args: &[String]) -> Result<(), String> {
    let file = args.first().ok_or("missing FILE.bench")?;
    let roots = &args[1..];
    if roots.is_empty() {
        return Err("missing OUTPUT_NET name(s)".to_owned());
    }
    let nl = load(file)?;
    let root_ids: Vec<_> = roots
        .iter()
        .map(|name| {
            nl.find_net(name)
                .ok_or_else(|| format!("no net named `{name}` in {file}"))
        })
        .collect::<Result<_, _>>()?;
    let cone = unit_delay_sim::netlist::cone::extract(&nl, &root_ids);
    eprintln!(
        "# cone of {}: {} of {} gates",
        roots.join(", "),
        cone.netlist.gate_count(),
        nl.gate_count()
    );
    print!("{}", bench_format::write(&cone.netlist));
    Ok(())
}

fn codegen(args: &[String]) -> Result<(), String> {
    let mut file = None;
    let mut technique = "parallel".to_owned();
    let mut optimization = Optimization::None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--technique" => {
                technique = iter.next().ok_or("--technique needs a value")?.clone();
            }
            "--opt" => {
                optimization = match iter.next().ok_or("--opt needs a value")?.as_str() {
                    "none" => Optimization::None,
                    "trim" => Optimization::Trimming,
                    "pt" => Optimization::PathTracing,
                    "pt-trim" => Optimization::PathTracingTrimming,
                    "cb" => Optimization::CycleBreaking,
                    other => return Err(format!("unknown optimization `{other}`")),
                };
            }
            other if file.is_none() && (other == "-" || !other.starts_with('-')) => {
                file = Some(other.to_owned());
            }
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    let file = file.ok_or("missing FILE.bench")?;
    let nl = load(&file)?;
    match technique.as_str() {
        "pc-set" | "pcset" => {
            let sim = PcSetSimulator::compile(&nl).map_err(|e| e.to_string())?;
            print!("{}", pcset::codegen_c::emit(&nl, &sim));
        }
        "parallel" => {
            let sim =
                ParallelSimulator::compile(&nl, optimization).map_err(|e| e.to_string())?;
            print!("{}", parallel::codegen_c::emit(&nl, &sim));
        }
        other => return Err(format!("unknown technique `{other}`")),
    }
    Ok(())
}
