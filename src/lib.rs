//! # unit-delay-sim
//!
//! A reproduction of Peter M. Maurer's *"Two New Techniques for
//! Unit-Delay Compiled Simulation"* (DAC 1990) as a Rust workspace:
//! compiled unit-delay logic simulation without an event queue.
//!
//! This facade crate re-exports the workspace's crates under stable
//! names:
//!
//! * [`netlist`] — circuit substrate: gate model, ISCAS-85 `.bench`
//!   format, levelization, generators, the calibrated ISCAS-85-like
//!   benchmark suite;
//! * [`eventsim`] — interpreted event-driven and zero-delay baselines;
//! * [`pcset`] — the PC-set method (§2 of the paper);
//! * [`parallel`] — the parallel technique (§3) with bit-field trimming
//!   and shift elimination (§4);
//! * [`core`] — the engine-agnostic simulator trait, stimulus
//!   generators, waveforms, hazard analysis and cross-validation.
//!
//! ## Quickstart
//!
//! ```
//! use unit_delay_sim::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Build a circuit (or parse a `.bench` file).
//! let mut b = NetlistBuilder::named("demo");
//! let a = b.input("a");
//! let bn = b.input("b");
//! let na = b.gate(GateKind::Not, &[a], "na")?;
//! let y = b.gate(GateKind::And, &[na, bn], "y")?;
//! b.output(y);
//! let nl = b.finish()?;
//!
//! // Compile with the paper's fastest configuration and simulate.
//! let mut sim = ParallelSimulator::compile(&nl, Optimization::PathTracingTrimming)?;
//! sim.simulate_vector(&[false, true]);
//! assert!(sim.final_value(y));
//! // The complete unit-delay waveform of y for that vector:
//! println!("{:?}", sim.history(y).expect("primary outputs are monitored"));
//! # Ok(())
//! # }
//! ```

pub use uds_core as core;
pub use uds_eventsim as eventsim;
pub use uds_netlist as netlist;
pub use uds_parallel as parallel;
pub use uds_pcset as pcset;

/// The most common imports in one place.
pub mod prelude {
    pub use uds_core::{build_simulator, Engine, UnitDelaySimulator};
    pub use uds_eventsim::EventDrivenUnitDelay;
    pub use uds_netlist::{
        bench_format, generators, levelize, GateKind, NetId, Netlist, NetlistBuilder,
    };
    pub use uds_parallel::{Optimization, ParallelSimulator};
    pub use uds_pcset::{PcSetSimulator, PcSets};
}
