//! Offline drop-in for the subset of the [`proptest`] crate API this
//! workspace uses.
//!
//! The build environment has no access to crates.io, so property tests
//! run on a vendored engine: each `#[test]` inside [`proptest!`]
//! generates `ProptestConfig::cases` inputs from a seed derived from
//! the test's name and asserts the body on each. There is **no
//! shrinking** — a failure reports the case index, and re-running is
//! fully deterministic, which is what the workspace's suites rely on.
//!
//! Supported surface: range strategies (`1u32..=30`, `0usize..4`,
//! `0.0f64..=1.0`), `any::<bool | u32 | u64>()`, tuple strategies up to
//! arity 10, [`Strategy::prop_map`], `prop::sample::select`,
//! `prop::collection::vec`, `prop_assert!`, `prop_assert_eq!`,
//! `prop_assume!`, and `#![proptest_config(ProptestConfig::with_cases(n))]`.
//!
//! [`proptest`]: https://crates.io/crates/proptest

use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng, Standard};

/// Per-test configuration; only the case count is honored.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` generated inputs per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of test inputs. Unlike the real crate there is no value
/// tree and no shrinking: `generate` directly yields a value.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// The [`Strategy::prop_map`] adapter.
#[derive(Clone, Copy, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64, f64);

/// Uniform over the whole domain of `T`.
#[derive(Clone, Copy, Debug, Default)]
pub struct Any<T> {
    marker: std::marker::PhantomData<T>,
}

impl<T: Standard> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        rng.gen()
    }
}

/// `any::<T>()` — uniform over `T`'s domain.
pub fn any<T: Standard>() -> Any<T> {
    Any {
        marker: std::marker::PhantomData,
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);

/// A fixed value (the real crate's `Just`).
#[derive(Clone, Copy, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Strategy namespaces mirroring `proptest::prop`.
pub mod prop {
    /// Sampling from explicit value lists.
    pub mod sample {
        use super::super::Strategy;
        use rand::rngs::StdRng;
        use rand::Rng;

        /// Uniform choice from a vector of options.
        #[derive(Clone, Debug)]
        pub struct Select<T> {
            options: Vec<T>,
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;

            fn generate(&self, rng: &mut StdRng) -> T {
                self.options[rng.gen_range(0..self.options.len())].clone()
            }
        }

        /// Uniform choice from `options`.
        ///
        /// # Panics
        ///
        /// Panics when generating from an empty list.
        pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
            Select { options }
        }
    }

    /// Collection strategies.
    pub mod collection {
        use super::super::Strategy;
        use rand::rngs::StdRng;
        use rand::Rng;

        /// Inclusive length bounds, converted from the range forms the
        /// real crate's `Into<SizeRange>` accepts (bare integer literals
        /// included — they infer as `i32`).
        #[derive(Clone, Copy, Debug)]
        pub struct SizeRange {
            min: usize,
            max: usize,
        }

        macro_rules! impl_size_range_from {
            ($($t:ty),*) => {$(
                impl From<::std::ops::Range<$t>> for SizeRange {
                    fn from(r: ::std::ops::Range<$t>) -> Self {
                        SizeRange {
                            min: r.start as usize,
                            max: (r.end as usize).saturating_sub(1),
                        }
                    }
                }
                impl From<::std::ops::RangeInclusive<$t>> for SizeRange {
                    fn from(r: ::std::ops::RangeInclusive<$t>) -> Self {
                        SizeRange {
                            min: *r.start() as usize,
                            max: *r.end() as usize,
                        }
                    }
                }
            )*};
        }
        impl_size_range_from!(i32, u32, usize);

        impl From<usize> for SizeRange {
            fn from(len: usize) -> Self {
                SizeRange { min: len, max: len }
            }
        }

        /// A `Vec` of values with a length drawn from a [`SizeRange`].
        #[derive(Clone, Copy, Debug)]
        pub struct VecStrategy<S> {
            element: S,
            length: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
                let len = rng.gen_range(self.length.min..=self.length.max);
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// `vec(element, 2..=8)` — a vector whose length is drawn from
        /// the given size range.
        pub fn vec<S: Strategy>(element: S, length: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                length: length.into(),
            }
        }
    }
}

/// Everything a test file needs, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{any, Just, ProptestConfig, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// A fresh deterministic generator for one case (used by the macro).
pub fn new_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// FNV-1a over the test name: a stable per-test base seed.
pub fn seed_for(name: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Asserts inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Discards the current case when the precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::ops::ControlFlow::Break(());
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::ops::ControlFlow::Break(());
        }
    };
}

/// The property-test macro: each `#[test] fn name(pat in strategy, …)`
/// becomes a plain test running `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            #[test]
            fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            #[test]
            fn $name() {
                use $crate::Strategy as _;
                let config: $crate::ProptestConfig = $config;
                let base = $crate::seed_for(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    let mut rng = $crate::new_rng(
                        base ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
                    );
                    let strategy = ($($strategy,)+);
                    let ($($pat,)+) = strategy.generate(&mut rng);
                    // The closure absorbs prop_assert!'s early returns
                    // (ControlFlow::Break) without ending the test fn.
                    #[allow(clippy::redundant_closure_call)]
                    let outcome: ::std::ops::ControlFlow<()> = (|| {
                        $body
                        ::std::ops::ControlFlow::Continue(())
                    })();
                    let _ = outcome;
                }
            }
        )*
    };
    (
        $(
            #[test]
            fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                #[test]
                fn $name($($pat in $strategy),+) $body
            )*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn seeds_differ_by_name() {
        assert_ne!(crate::seed_for("a"), crate::seed_for("b"));
        assert_eq!(crate::seed_for("a"), crate::seed_for("a"));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_and_tuples((a, b, f) in (1u32..=5, 0usize..3, 0.0f64..=1.0)) {
            prop_assert!((1..=5).contains(&a));
            prop_assert!(b < 3);
            prop_assert!((0.0..=1.0).contains(&f));
        }

        #[test]
        fn map_and_select(
            doubled in (1u32..=10).prop_map(|x| x * 2),
            pick in prop::sample::select(vec![3u8, 5, 7]),
            items in prop::collection::vec(any::<bool>(), 2..=8),
        ) {
            prop_assert_eq!(doubled % 2, 0);
            prop_assert!([3u8, 5, 7].contains(&pick));
            prop_assert!((2..=8).contains(&items.len()));
        }

        #[test]
        fn assume_discards(x in 0u32..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }
}
