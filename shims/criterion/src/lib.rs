//! Offline drop-in for the subset of the [`criterion`] crate API this
//! workspace's benches use.
//!
//! The build environment has no access to crates.io, so the bench
//! harness is vendored: [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_function`], [`Bencher::iter`],
//! [`BenchmarkId::new`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros. Each benchmark is timed with
//! `std::time::Instant` over `sample_size` samples and the median
//! per-iteration time is printed — no statistical analysis, plots, or
//! baselines.
//!
//! [`criterion`]: https://crates.io/crates/criterion

use std::fmt;
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benched computation.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// A `group/function/parameter` benchmark label.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A label `function/parameter`.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function.into(), parameter),
        }
    }

    /// A label that is just the parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Times the closure handed to [`Bencher::iter`].
pub struct Bencher {
    samples: Vec<Duration>,
    iterations_per_sample: u64,
    sample_size: usize,
}

impl Bencher {
    /// Runs `routine` repeatedly and records per-iteration timings.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // Warm-up, and calibration to a per-sample iteration count that
        // makes one sample take roughly a millisecond.
        let warmup = Instant::now();
        black_box(routine());
        let once = warmup.elapsed().max(Duration::from_nanos(1));
        let per_sample = (Duration::from_millis(1).as_nanos() / once.as_nanos()).clamp(1, 10_000);
        self.iterations_per_sample = per_sample as u64;
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..self.iterations_per_sample {
                black_box(routine());
            }
            self.samples.push(start.elapsed());
        }
    }

    fn median_per_iteration(&mut self) -> Duration {
        if self.samples.is_empty() {
            return Duration::ZERO;
        }
        self.samples.sort_unstable();
        self.samples[self.samples.len() / 2] / self.iterations_per_sample.max(1) as u32
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(1);
        self
    }

    /// Alias accepted for API compatibility; wall-clock budget is not
    /// enforced in the shim.
    pub fn measurement_time(&mut self, _budget: Duration) -> &mut Self {
        self
    }

    /// Times one benchmark.
    pub fn bench_function<I: fmt::Display, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut routine: F,
    ) -> &mut Self {
        let mut bencher = Bencher {
            samples: Vec::new(),
            iterations_per_sample: 1,
            sample_size: self.sample_size,
        };
        routine(&mut bencher);
        let median = bencher.median_per_iteration();
        let _ = &self.criterion;
        println!("{}/{}: median {:?} / iteration", self.name, id, median);
        self
    }

    /// Like [`BenchmarkGroup::bench_function`] with an explicit input.
    pub fn bench_with_input<I: fmt::Display, T, F: FnMut(&mut Bencher, &T)>(
        &mut self,
        id: I,
        input: &T,
        mut routine: F,
    ) -> &mut Self {
        self.bench_function(id, |b| routine(b, input))
    }

    /// Ends the group (a no-op; kept for API compatibility).
    pub fn finish(&mut self) {}
}

/// The top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    /// Times one stand-alone benchmark.
    pub fn bench_function<I: fmt::Display, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        routine: F,
    ) -> &mut Self {
        self.benchmark_group("bench").bench_function(id, routine);
        self
    }
}

/// Declares a function running a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($function:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($function(&mut criterion);)+
        }
    };
}

/// Declares `main` running benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_run_and_report() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut runs = 0u64;
        group.bench_function(BenchmarkId::new("count", 1), |b| {
            b.iter(|| {
                runs += 1;
                black_box(runs)
            })
        });
        group.finish();
        assert!(runs > 0);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", "c432").to_string(), "f/c432");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }
}
