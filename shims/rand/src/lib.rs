//! Offline drop-in for the subset of the [`rand`] crate API this
//! workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a tiny, deterministic PRNG behind the same names the real
//! crate exposes: [`Rng`] (`gen`, `gen_bool`, `gen_range`),
//! [`SeedableRng::seed_from_u64`], and [`rngs::StdRng`]. Streams are
//! **not** bit-compatible with the real `rand` — they only promise what
//! the workspace's tests rely on: determinism for equal seeds and
//! divergence for different seeds.
//!
//! The generator is xoshiro256** seeded through SplitMix64, the
//! textbook construction from Blackman & Vigna.
//!
//! [`rand`]: https://crates.io/crates/rand

use std::ops::{Range, RangeInclusive};

/// Seeding by a single `u64`, as the real `rand::SeedableRng` offers.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A value uniformly sampleable from a raw 64-bit draw.
pub trait Standard: Sized {
    /// Maps one (or more) raw draws to a uniform value.
    fn from_rng(rng: &mut dyn RngCore) -> Self;
}

impl Standard for bool {
    fn from_rng(rng: &mut dyn RngCore) -> bool {
        rng.next_u64() & 1 != 0
    }
}

impl Standard for u8 {
    fn from_rng(rng: &mut dyn RngCore) -> u8 {
        rng.next_u64() as u8
    }
}

impl Standard for u32 {
    fn from_rng(rng: &mut dyn RngCore) -> u32 {
        rng.next_u64() as u32
    }
}

impl Standard for u64 {
    fn from_rng(rng: &mut dyn RngCore) -> u64 {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn from_rng(rng: &mut dyn RngCore) -> usize {
        rng.next_u64() as usize
    }
}

impl Standard for f64 {
    fn from_rng(rng: &mut dyn RngCore) -> f64 {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// The raw 64-bit source every higher-level draw is built on.
pub trait RngCore {
    /// The next raw 64-bit draw.
    fn next_u64(&mut self) -> u64;
}

/// A half-open or inclusive range that `gen_range` accepts.
pub trait SampleRange<T> {
    /// Uniform sample from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty, matching the real crate.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u128;
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u128 + 1;
                start + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange<f64> for Range<f64> {
    fn sample(self, rng: &mut dyn RngCore) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::from_rng(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample(self, rng: &mut dyn RngCore) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        start + f64::from_rng(rng) * (end - start)
    }
}

/// The user-facing sampling surface of the real `rand::Rng`.
pub trait Rng: RngCore {
    /// A uniform value of any [`Standard`] type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool needs p in [0, 1]");
        f64::from_rng(self) < p
    }

    /// Uniform sample from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator
    /// (xoshiro256** — not the real crate's ChaCha-based `StdRng`).
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        state: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended for xoshiro seeding.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                state: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.state;
            let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s1 << 17;
            let mut s2 = s2 ^ s0;
            let mut s3 = s3 ^ s1;
            let s1 = s1 ^ s2;
            let s0 = s0 ^ s3;
            s2 ^= t;
            s3 = s3.rotate_left(45);
            self.state = [s0, s1, s2, s3];
            result
        }
    }

    /// Alias: the small generator is the same engine here.
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.gen()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(1u32..=5);
            assert!((1..=5).contains(&y));
            let f = rng.gen_range(0.0f64..=1.0);
            assert!((0.0..=1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
