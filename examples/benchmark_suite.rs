//! Mini version of the paper's Fig. 19: run the ISCAS-85-like suite
//! through the interpreted baseline and both compiled techniques and
//! print a timing table.
//!
//! Run with: `cargo run --release --example benchmark_suite [vectors]`
//! (default 500 vectors; the paper used 5,000 — see the `tables` binary
//! in `uds-bench` for the full reproduction).

use std::time::Instant;

use unit_delay_sim::core::vectors::RandomVectors;
use unit_delay_sim::eventsim::ConventionalEventDriven;
use unit_delay_sim::netlist::generators::iscas::Iscas85;
use unit_delay_sim::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let vectors: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(500);

    println!("{vectors} random vectors per circuit (times in ms)");
    println!(
        "{:<8} {:>12} {:>12} {:>12} {:>14}",
        "circuit", "event-3v", "event-2v", "pc-set", "parallel"
    );

    for circuit in Iscas85::ALL {
        let nl = circuit.build();
        let inputs = nl.primary_inputs().len();

        let time = |run: &mut dyn FnMut(&[bool])| -> f64 {
            let stimulus: Vec<Vec<bool>> =
                RandomVectors::new(inputs, 0xF16).take(vectors).collect();
            let start = Instant::now();
            for vector in &stimulus {
                run(vector);
            }
            start.elapsed().as_secs_f64() * 1e3
        };

        let mut e3 = ConventionalEventDriven::<unit_delay_sim::netlist::Logic3>::new(&nl)?;
        let t_e3 = time(&mut |v| {
            let l3: Vec<_> = v.iter().map(|&b| b.into()).collect();
            e3.simulate_vector(&l3);
        });
        let mut e2 = ConventionalEventDriven::<bool>::new(&nl)?;
        let t_e2 = time(&mut |v| {
            e2.simulate_vector(v);
        });
        let mut pc = PcSetSimulator::compile(&nl)?;
        let t_pc = time(&mut |v| pc.simulate_vector(v));
        let mut par = ParallelSimulator::compile(&nl, Optimization::None)?;
        let t_par = time(&mut |v| par.simulate_vector(v));

        println!(
            "{:<8} {:>12.1} {:>12.1} {:>12.1} {:>14.1}",
            circuit.to_string(),
            t_e3,
            t_e2,
            t_pc,
            t_par
        );
    }
    println!("\nExpected shape (paper Fig. 19): event-3v slowest, pc-set ~4x");
    println!("faster than event-driven, parallel ~10x faster.");
    Ok(())
}
