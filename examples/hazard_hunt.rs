//! Hazard hunting with the parallel technique: because one compiled pass
//! yields the *complete* unit-delay history of every net, glitch
//! detection is a post-processing scan (the analysis §3 of the paper
//! sketches with comparison fields).
//!
//! Run with: `cargo run --release --example hazard_hunt`

use unit_delay_sim::core::hazard::{self, Activity};
use unit_delay_sim::core::vectors::RandomVectors;
use unit_delay_sim::netlist::generators::alu::alu;
use unit_delay_sim::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An 8-bit ALU: the select lines fan out everywhere, so operation
    // switches race against data paths — fertile ground for hazards.
    let nl = alu(8)?;
    let mut sim = ParallelSimulator::compile(&nl, Optimization::PathTracingTrimming)?;

    let mut static_hazards = 0usize;
    let mut dynamic_hazards = 0usize;
    let mut worst: Option<(usize, hazard::Hazard)> = None;

    let vectors = 2_000;
    for (index, vector) in RandomVectors::new(nl.primary_inputs().len(), 0xA10)
        .take(vectors)
        .enumerate()
    {
        sim.simulate_vector(&vector);
        for found in hazard::scan(&nl, &sim) {
            match found.activity {
                Activity::StaticHazard => static_hazards += 1,
                Activity::DynamicHazard => dynamic_hazards += 1,
                _ => {}
            }
            let transitions = found.history.windows(2).filter(|p| p[0] != p[1]).count();
            let is_worse = worst
                .as_ref()
                .map(|(_, w)| transitions > w.history.windows(2).filter(|p| p[0] != p[1]).count())
                .unwrap_or(true);
            if is_worse {
                worst = Some((index, found));
            }
        }
    }

    println!("scanned {vectors} random vectors on `{}`:", nl.name());
    println!("  static hazards (pulses):    {static_hazards}");
    println!("  dynamic hazards (stutters): {dynamic_hazards}");
    if let Some((vector_index, hazard)) = worst {
        let bits: String = hazard
            .history
            .iter()
            .map(|&b| char::from(b'0' + b as u8))
            .collect();
        println!(
            "  busiest net: {} on vector {vector_index}: {bits}",
            nl.net_name(hazard.net),
        );
    }
    Ok(())
}
