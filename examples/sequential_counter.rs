//! Simulating a synchronous sequential circuit by cutting it at its
//! flip-flops (§1 of the paper): a 4-bit counter built from DFFs and a
//! half-adder chain, clocked for 20 cycles on a compiled simulator.
//!
//! Run with: `cargo run --example sequential_counter`

use unit_delay_sim::netlist::sequential::cut_flip_flops;
use unit_delay_sim::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // q' = q + en (4-bit increment when en is high): next[i] =
    // q[i] XOR carry[i], carry[0] = en, carry[i+1] = q[i] AND carry[i].
    let bits = 4;
    let mut b = NetlistBuilder::named("counter4");
    let en = b.input("en");
    let q: Vec<NetId> = (0..bits)
        .map(|i| b.get_or_create_net(&format!("q{i}")))
        .collect();
    let mut carry = en;
    for (i, &qi) in q.iter().enumerate() {
        let next = b.gate(GateKind::Xor, &[qi, carry], format!("d{i}"))?;
        b.gate_onto(GateKind::Dff, &[next], qi)?;
        if i + 1 < bits {
            carry = b.gate(GateKind::And, &[qi, carry], format!("c{i}"))?;
        }
        b.output(qi);
    }
    let nl = b.finish()?;
    assert!(nl.is_sequential());

    // Cut: flip-flop outputs become pseudo inputs, inputs pseudo outputs.
    let cut = cut_flip_flops(&nl)?;
    println!(
        "cut `{}`: {} state bits, combinational depth {}",
        nl.name(),
        cut.state_bits(),
        levelize(&cut.combinational)?.depth
    );

    let mut sim =
        ParallelSimulator::compile(&cut.combinational, Optimization::PathTracingTrimming)?;

    // Clocking loop: one compiled vector per cycle, feeding each D back
    // into its Q. Input order of the cut circuit: original PIs first,
    // then the flip-flop outputs in cut order.
    let mut state = vec![false; cut.state_bits()];
    println!("cycle  en  count");
    for cycle in 0..20 {
        let en_bit = cycle < 12; // stop counting after 12 cycles
        let mut inputs = vec![en_bit];
        inputs.extend_from_slice(&state);
        sim.simulate_vector(&inputs);
        for (slot, element) in state.iter_mut().zip(&cut.state) {
            *slot = sim.final_value(element.d);
        }
        let count: u32 = state
            .iter()
            .enumerate()
            .map(|(i, &b)| (b as u32) << i)
            .sum();
        println!("{cycle:>5}  {:>2}  {count:>5}", en_bit as u8);
        let expected = (cycle + 1).min(12) % 16;
        assert_eq!(count, expected as u32);
    }
    println!("counter matched the architectural model for all 20 cycles");
    Ok(())
}
