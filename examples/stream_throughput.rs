//! The PC-set method's data-parallel edge (paper §3/§6): its state
//! words can carry 64 independent simulation streams, so 64 input
//! sequences advance per pass — the "bit-parallel simulation of multiple
//! input vectors" the paper notes the parallel technique cannot do
//! (its word dimension is already spent on time).
//!
//! Run with: `cargo run --release --example stream_throughput`

use std::time::Instant;

use unit_delay_sim::core::vectors::RandomVectors;
use unit_delay_sim::netlist::generators::iscas::Iscas85;
use unit_delay_sim::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let nl = Iscas85::C880.build();
    let width = nl.primary_inputs().len();
    let sequences = 64usize;
    let steps = 2_000usize;

    // 64 independent vector sequences.
    let streams: Vec<Vec<Vec<bool>>> = (0..sequences)
        .map(|lane| RandomVectors::new(width, lane as u64).take(steps).collect())
        .collect();

    // Sequential: one simulator per sequence.
    let start = Instant::now();
    let mut sequential_finals = Vec::new();
    for lane in streams.iter() {
        let mut sim = PcSetSimulator::compile(&nl)?;
        for vector in lane {
            sim.simulate_vector(vector);
        }
        sequential_finals.push(sim.final_value(nl.primary_outputs()[0]));
    }
    let sequential_time = start.elapsed().as_secs_f64();

    // Data-parallel: all 64 sequences in one simulator, bit-sliced.
    let start = Instant::now();
    let mut sim = PcSetSimulator::compile(&nl)?;
    for step in 0..steps {
        let words: Vec<u64> = (0..width)
            .map(|i| {
                let mut word = 0u64;
                for (lane, sequence) in streams.iter().enumerate() {
                    word |= (sequence[step][i] as u64) << lane;
                }
                word
            })
            .collect();
        sim.simulate_streams(&words);
    }
    let parallel_time = start.elapsed().as_secs_f64();

    // The two executions must agree lane for lane.
    let finals = sim.final_value_streams(nl.primary_outputs()[0]);
    for (lane, &expected) in sequential_finals.iter().enumerate() {
        assert_eq!(finals >> lane & 1 != 0, expected, "lane {lane} diverged");
    }

    println!("{}: {} sequences x {} vectors", nl.name(), sequences, steps);
    println!("  sequential:    {sequential_time:.3} s");
    println!("  64-stream:     {parallel_time:.3} s");
    println!(
        "  speedup:       {:.1}x (upper bound 64x; overhead is the per-op dispatch)",
        sequential_time / parallel_time
    );
    println!("  lanes verified against sequential runs: all 64 agree");
    Ok(())
}
