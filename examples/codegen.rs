//! Emit the paper's generated C for its worked example (Figs. 4, 6, 10):
//! the PC-set method, the unoptimized parallel technique, and the
//! shift-eliminated parallel technique on the same two-gate network.
//!
//! Run with: `cargo run --example codegen`

use unit_delay_sim::parallel::codegen_c as parallel_c;
use unit_delay_sim::pcset::codegen_c as pcset_c;
use unit_delay_sim::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The running example of the paper: D = A & B; E = D & C.
    let mut b = NetlistBuilder::named("fig4");
    let a = b.input("A");
    let bn = b.input("B");
    let c = b.input("C");
    let d = b.gate(GateKind::And, &[a, bn], "D")?;
    let e = b.gate(GateKind::And, &[d, c], "E")?;
    b.output(e);
    let nl = b.finish()?;
    let _ = (d, e);

    println!("=== PC-set method (paper Fig. 4) ===");
    let pcset = PcSetSimulator::compile(&nl)?;
    println!("{}", pcset_c::emit(&nl, &pcset)?);

    println!("=== parallel technique, unoptimized (paper Fig. 6) ===");
    let parallel = ParallelSimulator::compile(&nl, Optimization::None)?;
    println!("{}", parallel_c::emit(&nl, &parallel)?);

    println!("=== parallel technique, shifts eliminated (paper Fig. 10) ===");
    let optimized = ParallelSimulator::compile(&nl, Optimization::PathTracing)?;
    println!("{}", parallel_c::emit(&nl, &optimized)?);

    // Generated-code size comparison on a real circuit: the paper notes
    // the PC-set method emitted >100k lines for c6288.
    let big = generators::iscas::Iscas85::C1908.build();
    let pcset_big = PcSetSimulator::compile(&big)?;
    let parallel_big = ParallelSimulator::compile(&big, Optimization::None)?;
    println!("generated-code size for {}:", big.name());
    println!(
        "  pc-set:   {:>8} lines of C",
        pcset_c::line_count(&big, &pcset_big)?
    );
    println!(
        "  parallel: {:>8} lines of C",
        parallel_c::line_count(&big, &parallel_big)?
    );
    Ok(())
}
