//! Quickstart: build a small circuit, compile it with every engine, and
//! watch the unit-delay waveforms (including a glitch) roll out.
//!
//! Run with: `cargo run --example quickstart`

use unit_delay_sim::core::waveform::Waveform;
use unit_delay_sim::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // y = (a AND NOT a') reconverging with a buffered path — a classic
    // glitch generator under unit delay.
    let mut b = NetlistBuilder::named("quickstart");
    let a = b.input("a");
    let en = b.input("en");
    let na = b.gate(GateKind::Not, &[a], "na")?;
    let slow = b.gate(GateKind::Buf, &[na], "slow")?;
    let pulse = b.gate(GateKind::And, &[a, slow], "pulse")?;
    let y = b.gate(GateKind::And, &[pulse, en], "y")?;
    b.output(y);
    let nl = b.finish()?;

    println!("circuit `{}`:", nl.name());
    println!("{}", bench_format::write(&nl));

    // Compile once per engine; drive the same two vectors through all.
    let vectors = [vec![false, true], vec![true, true]];
    for engine in Engine::ALL {
        let mut sim = build_simulator(&nl, engine)?;
        for vector in &vectors {
            sim.simulate_vector(vector);
        }
        let history = sim
            .history(y)
            .map(|values| Waveform::new(y, values).to_string())
            .unwrap_or_else(|| "n/a".to_owned());
        println!(
            "{:<18} final(y) = {}   history(y) = {}",
            engine.to_string(),
            sim.final_value(y) as u8,
            history
        );
    }

    // The paper's point: compiled simulation gives the whole history per
    // vector. `a` rising makes `y` pulse high for two time units even
    // though its settled value stays 0.
    let mut sim = ParallelSimulator::compile(&nl, Optimization::PathTracingTrimming)?;
    sim.simulate_vector(&[false, true]);
    sim.simulate_vector(&[true, true]);
    assert!(!sim.final_value(y));
    let history = sim
        .history(y)
        .expect("y is a primary output, fully monitored");
    assert!(history.contains(&true), "the glitch is visible");
    println!("\nglitch on y captured: {history:?}");
    Ok(())
}
