//! Workspace-level integration: every engine, every circuit family, one
//! invariant — identical unit-delay behavior everywhere.

use unit_delay_sim::core::crosscheck;
use unit_delay_sim::core::vectors::{Exhaustive, RandomVectors, WalkingOnes};
use unit_delay_sim::netlist::generators::adders::{ripple_carry_adder, AdderStyle};
use unit_delay_sim::netlist::generators::alu::alu;
use unit_delay_sim::netlist::generators::comparator::comparator;
use unit_delay_sim::netlist::generators::iscas::{c17, Iscas85};
use unit_delay_sim::netlist::generators::multiplier::array_multiplier;
use unit_delay_sim::netlist::generators::shifter::{barrel_shifter, priority_encoder};
use unit_delay_sim::netlist::generators::trees::{decoder, mux_tree};
use unit_delay_sim::prelude::*;

fn all_engines(nl: &Netlist) -> Vec<Box<dyn UnitDelaySimulator>> {
    Engine::ALL
        .iter()
        .map(|&e| build_simulator(nl, e).expect("engine builds"))
        .collect()
}

#[test]
fn c17_exhaustive_pairs() {
    // Every consecutive pair of the 32 patterns, in both orders.
    let nl = c17();
    let mut sims = all_engines(&nl);
    let stimulus: Vec<Vec<bool>> = Exhaustive::new(5)
        .chain(Exhaustive::new(5).skip(1))
        .collect();
    crosscheck::run(&nl, &mut sims, stimulus).unwrap();
}

#[test]
fn ripple_adder_walking_and_random() {
    let nl = ripple_carry_adder(8, AdderStyle::NativeXor).unwrap();
    let width = nl.primary_inputs().len();
    let mut sims = all_engines(&nl);
    let stimulus: Vec<Vec<bool>> = WalkingOnes::new(width)
        .take(2 * width)
        .chain(RandomVectors::new(width, 3).take(60))
        .collect();
    crosscheck::run(&nl, &mut sims, stimulus).unwrap();
}

#[test]
fn multiplier_random() {
    let nl = array_multiplier(6, 6, AdderStyle::ExpandedXor).unwrap();
    let mut sims = all_engines(&nl);
    crosscheck::run(&nl, &mut sims, RandomVectors::new(12, 4).take(60)).unwrap();
}

#[test]
fn alu_and_comparator_and_mux() {
    for nl in [
        alu(6).unwrap(),
        comparator(6).unwrap(),
        mux_tree(4).unwrap(),
        decoder(4).unwrap(),
        barrel_shifter(3).unwrap(),
        priority_encoder(8).unwrap(),
    ] {
        let width = nl.primary_inputs().len();
        let mut sims = all_engines(&nl);
        crosscheck::run(&nl, &mut sims, RandomVectors::new(width, 5).take(50))
            .unwrap_or_else(|e| panic!("{}: {e}", nl.name()));
    }
}

#[test]
fn c432_standin_all_engines() {
    let nl = Iscas85::C432.build();
    let width = nl.primary_inputs().len();
    let mut sims = all_engines(&nl);
    crosscheck::run(&nl, &mut sims, RandomVectors::new(width, 6).take(15)).unwrap();
}

#[test]
fn c1908_standin_two_word_fields() {
    let nl = Iscas85::C1908.build();
    let width = nl.primary_inputs().len();
    let mut sims = all_engines(&nl);
    crosscheck::run(&nl, &mut sims, RandomVectors::new(width, 7).take(6)).unwrap();
}

#[test]
fn c6288_standin_four_word_fields() {
    // The deepest circuit: 4-word bit-fields, the multiplier stand-in.
    let nl = Iscas85::C6288.build();
    let width = nl.primary_inputs().len();
    let mut sims: Vec<Box<dyn UnitDelaySimulator>> = vec![
        build_simulator(&nl, Engine::EventDriven).unwrap(),
        build_simulator(&nl, Engine::PcSet).unwrap(),
        build_simulator(&nl, Engine::Parallel).unwrap(),
        build_simulator(&nl, Engine::ParallelTrimming).unwrap(),
        build_simulator(&nl, Engine::ParallelPathTracingTrimming).unwrap(),
    ];
    crosscheck::run(&nl, &mut sims, RandomVectors::new(width, 8).take(4)).unwrap();
}

#[test]
fn zero_delay_simulators_agree_with_final_values() {
    use unit_delay_sim::eventsim::zero_delay::{ZeroDelayCompiled, ZeroDelayInterpreted};
    let nl = Iscas85::C499.build();
    let width = nl.primary_inputs().len();
    let mut unit = build_simulator(&nl, Engine::ParallelPathTracingTrimming).unwrap();
    let mut interp = ZeroDelayInterpreted::new(&nl).unwrap();
    let mut compiled = ZeroDelayCompiled::compile(&nl).unwrap();
    for vector in RandomVectors::new(width, 9).take(30) {
        unit.simulate_vector(&vector);
        interp.simulate_vector(&vector);
        compiled.simulate_vector(&vector);
        for &po in nl.primary_outputs() {
            assert_eq!(unit.final_value(po), interp.value(po));
            assert_eq!(unit.final_value(po), compiled.value(po));
        }
    }
}

#[test]
fn cone_extraction_preserves_behavior_under_all_engines() {
    use unit_delay_sim::netlist::cone;
    let nl = Iscas85::C880.build();
    let root = nl.primary_outputs()[3];
    let cone = cone::extract(&nl, &[root]);
    let cone_root = cone.to_cone(root).unwrap();

    let mut full = build_simulator(&nl, Engine::EventDriven).unwrap();
    let mut sims = all_engines(&cone.netlist);

    // Drive both with consistent assignments: cone inputs are a subset
    // of the full circuit's inputs, matched by name.
    let full_width = nl.primary_inputs().len();
    for vector in RandomVectors::new(full_width, 77).take(20) {
        full.simulate_vector(&vector);
        let cone_vector: Vec<bool> = cone
            .netlist
            .primary_inputs()
            .iter()
            .map(|&pi| {
                let name = cone.netlist.net_name(pi);
                let original = nl
                    .find_net(name)
                    .expect("cone inputs exist in the full circuit");
                let position = nl
                    .primary_inputs()
                    .iter()
                    .position(|&n| n == original)
                    .expect("cone inputs are primary inputs");
                vector[position]
            })
            .collect();
        for sim in &mut sims {
            sim.simulate_vector(&cone_vector);
            assert_eq!(
                sim.final_value(cone_root),
                full.final_value(root),
                "{} diverged on the cone",
                sim.engine_name()
            );
        }
    }
}

#[test]
fn bench_format_round_trip_preserves_behavior() {
    let nl = Iscas85::C432.build();
    let text = bench_format::write(&nl);
    let reparsed = bench_format::parse(&text, "c432").unwrap();
    let width = nl.primary_inputs().len();
    let mut a = build_simulator(&nl, Engine::ParallelPathTracingTrimming).unwrap();
    let mut b = build_simulator(&reparsed, Engine::ParallelPathTracingTrimming).unwrap();
    for vector in RandomVectors::new(width, 10).take(10) {
        a.simulate_vector(&vector);
        b.simulate_vector(&vector);
        for (&pa, &pb) in nl.primary_outputs().iter().zip(reparsed.primary_outputs()) {
            assert_eq!(a.final_value(pa), b.final_value(pb));
        }
    }
}
