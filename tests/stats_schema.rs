//! End-to-end contract of `udsim --stats`: the JSON report is
//! well-formed, carries the documented schema (DESIGN.md §11), and is
//! deterministic — two runs with the same circuit and seed produce
//! byte-identical reports once the wall-clock fields are stripped.

use std::path::PathBuf;
use std::process::{Command, Output};

use unit_delay_sim::core::telemetry::json::Json;
use unit_delay_sim::core::telemetry::{SCHEMA, TIMING_KEYS};

fn udsim(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_udsim"))
        .args(args)
        .output()
        .expect("udsim binary runs")
}

fn fixture(name: &str, contents: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    std::fs::create_dir_all(&dir).expect("tmpdir exists");
    let path = dir.join(name);
    std::fs::write(&path, contents).expect("fixture written");
    path
}

const C17: &str = "INPUT(1)\nINPUT(2)\nINPUT(3)\nINPUT(6)\nINPUT(7)\nOUTPUT(22)\nOUTPUT(23)\n\
                   10 = NAND(1, 3)\n11 = NAND(3, 6)\n16 = NAND(2, 11)\n19 = NAND(11, 7)\n\
                   22 = NAND(10, 16)\n23 = NAND(16, 19)\n";

/// Runs `simulate --stats -` and returns the parsed stdout document.
fn stats_doc(extra: &[&str]) -> Json {
    let path = fixture("stats17.bench", C17);
    let mut args = vec!["simulate", path.to_str().unwrap(), "--stats", "-"];
    args.extend_from_slice(extra);
    let out = udsim(&args);
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).expect("stats JSON is UTF-8");
    Json::parse(&stdout).expect("stats output parses as JSON")
}

#[test]
fn report_carries_schema_spans_counters_and_gauges() {
    let doc = stats_doc(&["--vectors", "8"]);
    assert_eq!(doc.get("schema").unwrap().as_str(), Some(SCHEMA));

    // The span tree covers the pipeline: parse, compile (with the
    // compiler's own phases nested inside), simulate.
    let spans = doc.get("spans").unwrap().as_arr().unwrap();
    let names: Vec<&str> = spans
        .iter()
        .map(|s| s.get("name").unwrap().as_str().unwrap())
        .collect();
    for phase in ["parse", "compile", "simulate", "static-metrics"] {
        assert!(
            names.contains(&phase),
            "missing span `{phase}` in {names:?}"
        );
    }
    let compile = &spans[names.iter().position(|&n| n == "compile").unwrap()];
    let children = compile.get("children").unwrap().as_arr().unwrap();
    assert!(
        !children.is_empty(),
        "compile span should nest the compiler's phases"
    );

    // Runtime counters and the paper's static metrics.
    let counters = doc.get("counters").unwrap();
    assert_eq!(counters.get("run.vectors").unwrap().as_u64(), Some(8));
    let gauges = doc.get("gauges").unwrap();
    for gauge in [
        "pcset.set_size.max",
        "pcset.set_size.total",
        "pcset.zero_insertions",
        "parallel.none.word_ops",
        "parallel.pt-trim.shifts_eliminated",
        "parallel.pt-trim.words_trimmed",
        "parallel.cb.shifts_retained",
    ] {
        assert!(
            gauges.get(gauge).and_then(Json::as_u64).is_some(),
            "missing gauge `{gauge}`"
        );
    }

    // Labels identify the run.
    let labels = doc.get("labels").unwrap();
    assert_eq!(labels.get("circuit").unwrap().as_str(), Some("stats17"));
    assert_eq!(labels.get("command").unwrap().as_str(), Some("simulate"));
    assert!(labels.get("engine").is_some());

    // Build facts: the constant-1 gauge plus who/what built the binary.
    assert_eq!(gauges.get("build_info").unwrap().as_u64(), Some(1));
    assert_eq!(
        labels.get("build.version").unwrap().as_str(),
        Some(env!("CARGO_PKG_VERSION"))
    );
    assert_eq!(labels.get("build.word_bits").unwrap().as_str(), Some("32"));
    assert!(
        matches!(
            labels.get("build.profile").unwrap().as_str(),
            Some("debug" | "release")
        ),
        "{labels:?}"
    );
}

#[test]
fn same_seed_runs_are_identical_modulo_timing() {
    let args = ["--vectors", "16", "--seed", "7"];
    let a = stats_doc(&args).without_keys(TIMING_KEYS);
    let b = stats_doc(&args).without_keys(TIMING_KEYS);
    assert_eq!(
        a.render(),
        b.render(),
        "same circuit + same seed must reproduce every metric exactly"
    );
}

#[test]
fn different_seeds_still_share_static_metrics() {
    let a = stats_doc(&["--seed", "1"]);
    let b = stats_doc(&["--seed", "2"]);
    // Static compile metrics depend only on the circuit.
    assert_eq!(
        a.get("gauges").unwrap().render(),
        b.get("gauges").unwrap().render()
    );
}

#[test]
fn stats_to_stdout_moves_human_output_to_stderr() {
    let path = fixture("stats17b.bench", C17);
    let out = udsim(&[
        "simulate",
        path.to_str().unwrap(),
        "--stats",
        "-",
        "--vectors",
        "2",
    ]);
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stdout.trim_start().starts_with('{'),
        "stdout must be pure JSON, got: {stdout}"
    );
    assert!(
        stderr.contains("# vector ->"),
        "per-vector output must move to stderr: {stderr}"
    );
}

#[test]
fn stats_to_file_keeps_stdout_human() {
    let path = fixture("stats17c.bench", C17);
    let stats_path = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("out.json");
    let out = udsim(&[
        "simulate",
        path.to_str().unwrap(),
        "--stats",
        stats_path.to_str().unwrap(),
        "--vectors",
        "2",
    ]);
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("# vector ->"), "{stdout}");
    let written = std::fs::read_to_string(&stats_path).expect("stats file written");
    let doc = Json::parse(&written).expect("file parses");
    assert_eq!(doc.get("schema").unwrap().as_str(), Some(SCHEMA));
}

#[test]
fn guarded_run_records_fallbacks_in_counters() {
    // A 40-deep buffer chain with a one-word field budget: the
    // unoptimized parallel engine cannot fit, so the chain degrades and
    // the report must say so.
    let mut text = String::from("INPUT(a)\n");
    let mut prev = "a".to_owned();
    for i in 0..40 {
        text.push_str(&format!("b{i} = BUF({prev})\n"));
        prev = format!("b{i}");
    }
    text.push_str(&format!("OUTPUT({prev})\n"));
    let path = fixture("statschain.bench", &text);
    let out = udsim(&[
        "simulate",
        path.to_str().unwrap(),
        "--stats",
        "-",
        "--fallback",
        "--engine",
        "parallel",
        "--budget",
        "field-words=1",
        "--vectors",
        "3",
    ]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let doc = Json::parse(&String::from_utf8(out.stdout).unwrap()).unwrap();
    let counters = doc.get("counters").unwrap();
    assert!(
        counters.get("guard.fallbacks").and_then(Json::as_u64) >= Some(1),
        "fallback must be counted: {}",
        counters.render()
    );
    assert!(
        counters.get("guard.budget_trips").and_then(Json::as_u64) >= Some(1),
        "budget trip must be counted: {}",
        counters.render()
    );
    assert_eq!(counters.get("run.vectors").unwrap().as_u64(), Some(3));
}

#[test]
fn codegen_stats_reports_compile_metrics() {
    let path = fixture("stats17d.bench", C17);
    let out = udsim(&[
        "codegen",
        path.to_str().unwrap(),
        "--technique",
        "parallel",
        "--opt",
        "pt-trim",
        "--stats",
        "-",
    ]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    let doc = Json::parse(&stdout).expect("codegen --stats - emits pure JSON on stdout");
    assert_eq!(
        doc.get("labels").unwrap().get("command").unwrap().as_str(),
        Some("codegen")
    );
    assert!(doc
        .get("gauges")
        .unwrap()
        .get("parallel.pt-trim.word_ops")
        .is_some());
    // The generated C moved to stderr.
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("#include"), "{stderr}");
}
