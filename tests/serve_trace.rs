//! End-to-end contract of live request tracing (`udsim serve --trace`)
//! and the rolling throughput gauges.
//!
//! A real daemon process on an ephemeral port, driven over raw TCP and
//! with `udsim loadgen`. Pins the observability chain the tooling
//! depends on: an inbound `x-uds-trace-id` header must surface in the
//! `uds-reqlog-v1` line, echo on the response, and label the exported
//! span tree; the `--trace` file must be a loadable Chrome-trace
//! document whose per-request phase spans sum to no more than the
//! request wall time the reqlog recorded; and
//! `uds_engine_vectors_per_s` in `/metrics` must reflect *live*
//! traffic — moving between scrapes without a restart.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};

use unit_delay_sim::core::telemetry::json::Json;

const C17: &str = "INPUT(1)\nINPUT(2)\nINPUT(3)\nINPUT(6)\nINPUT(7)\nOUTPUT(22)\nOUTPUT(23)\n\
                   10 = NAND(1, 3)\n11 = NAND(3, 6)\n16 = NAND(2, 11)\n19 = NAND(11, 7)\n\
                   22 = NAND(10, 16)\n23 = NAND(16, 19)\n";

fn tmpfile(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    std::fs::create_dir_all(&dir).expect("tmpdir exists");
    dir.join(name)
}

/// A running daemon plus the address it announced. Killed on drop so a
/// failing test never leaks the process.
struct Daemon {
    child: Child,
    addr: String,
    /// Held open so the daemon's stderr writes never hit a closed pipe.
    _stderr: BufReader<std::process::ChildStderr>,
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn spawn_daemon(extra: &[&str]) -> Daemon {
    let mut child = Command::new(env!("CARGO_BIN_EXE_udsim"))
        .args(["serve", "--addr", "127.0.0.1:0", "--allow-quit"])
        .args(extra)
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("daemon spawns");
    let mut stderr = BufReader::new(child.stderr.take().expect("stderr piped"));
    let mut line = String::new();
    stderr.read_line(&mut line).expect("announcement line");
    let addr = line
        .split("http://")
        .nth(1)
        .unwrap_or_else(|| panic!("no announcement in {line:?}"))
        .trim()
        .to_owned();
    Daemon {
        child,
        addr,
        _stderr: stderr,
    }
}

/// One raw HTTP/1.1 exchange; returns the whole reply (status line,
/// headers, body) so header assertions stay possible.
fn exchange(addr: &str, raw: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(raw.as_bytes()).expect("send");
    let mut reply = String::new();
    stream.read_to_string(&mut reply).expect("full response");
    reply
}

fn get(addr: &str, path: &str) -> String {
    exchange(
        addr,
        &format!("GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"),
    )
}

fn simulate_body() -> String {
    format!(
        "{{\"bench\":{},\"name\":\"c17\",\"vectors\":[[0,1,0,1,0],[1,1,1,1,1]]}}",
        Json::Str(C17.to_owned()).render()
    )
}

/// POSTs /simulate carrying an explicit trace id header.
fn post_simulate_traced(addr: &str, trace_id: &str) -> String {
    let body = simulate_body();
    exchange(
        addr,
        &format!(
            "POST /simulate HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\
             x-uds-trace-id: {trace_id}\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        ),
    )
}

/// Asks the daemon to drain and waits for a clean exit (flushes and
/// closes the trace file).
fn quit(mut daemon: Daemon) {
    let body = "";
    let reply = exchange(
        &daemon.addr,
        &format!(
            "POST /quitquitquit HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\
             Content-Length: {}\r\n\r\n{body}",
            body.len()
        ),
    );
    assert!(reply.starts_with("HTTP/1.1 200"), "{reply}");
    let exit = daemon.child.wait().expect("daemon exits");
    assert_eq!(exit.code(), Some(0), "clean shutdown exits 0");
}

/// Value of the first `uds_engine_vectors_per_s{...}` sample in a
/// `/metrics` scrape (the windowed gauge, not the `_ewma` variant).
fn rolling_gauge(metrics: &str) -> Option<f64> {
    metrics
        .lines()
        .find(|l| l.starts_with("uds_engine_vectors_per_s{"))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse().ok())
}

#[test]
fn trace_id_propagates_header_to_reqlog_to_response_to_span_tree() {
    let trace_path = tmpfile("e2e_trace.json");
    let reqlog_path = tmpfile("e2e_trace_reqlog.ndjson");
    let daemon = spawn_daemon(&[
        "--trace",
        trace_path.to_str().expect("utf8 path"),
        "--reqlog",
        reqlog_path.to_str().expect("utf8 path"),
    ]);

    let reply = post_simulate_traced(&daemon.addr, "e2e-trace-42");
    assert!(reply.starts_with("HTTP/1.1 200"), "{reply}");
    // The response echoes the request's trace id.
    assert!(
        reply
            .lines()
            .any(|l| l.eq_ignore_ascii_case("x-uds-trace-id: e2e-trace-42")),
        "no echoed trace id in {reply}"
    );
    // A second, identical request hits the prototype cache — its
    // reqlog line must *omit* the compile phase, not report it as 0.
    let reply = post_simulate_traced(&daemon.addr, "e2e-trace-43-hit");
    assert!(reply.starts_with("HTTP/1.1 200"), "{reply}");
    quit(daemon);

    // The reqlog line carries the id, the request wall time, and the
    // per-phase breakdown.
    let reqlog = std::fs::read_to_string(&reqlog_path).expect("reqlog readable");
    let line = reqlog
        .lines()
        .map(|l| Json::parse(l).expect("reqlog line parses"))
        .find(|doc| doc.get("trace_id").and_then(Json::as_str) == Some("e2e-trace-42"))
        .expect("a reqlog line carries the inbound trace id");
    let wall_ns = line
        .get("wall_ns")
        .and_then(Json::as_u64)
        .expect("wall_ns recorded");
    let phase_ms = line.get("phase_ms").expect("phase_ms recorded");
    let phases = match phase_ms {
        Json::Obj(members) => members,
        other => panic!("phase_ms is not an object: {other:?}"),
    };
    // The cold request executes the full pipeline...
    for expected in ["parse", "cache_lookup", "compile", "simulate", "serialize"] {
        assert!(
            phases.iter().any(|(name, _)| name == expected),
            "phase_ms misses {expected}: {phase_ms:?}"
        );
    }
    // ...and the key set is exactly the executed-phase set: nothing
    // outside the phase universe, and no zero-filled placeholders.
    let executed = [
        "queue_wait",
        "parse",
        "cache_lookup",
        "compile",
        "simulate",
        "serialize",
    ];
    for (name, _) in phases {
        assert!(executed.contains(&name.as_str()), "unknown phase {name}");
    }
    let hit_line = reqlog
        .lines()
        .map(|l| Json::parse(l).expect("reqlog line parses"))
        .find(|doc| doc.get("trace_id").and_then(Json::as_str) == Some("e2e-trace-43-hit"))
        .expect("the cache-hit request logs a line");
    assert_eq!(
        hit_line.get("cache").and_then(Json::as_str),
        Some("hit"),
        "second identical request must hit the cache"
    );
    let hit_phases = match hit_line.get("phase_ms").expect("phase_ms on the hit") {
        Json::Obj(members) => members,
        other => panic!("phase_ms is not an object: {other:?}"),
    };
    assert!(
        hit_phases.iter().all(|(name, _)| name != "compile"),
        "a cache hit never ran compile, so the key must be absent: {hit_phases:?}"
    );
    for (name, _) in hit_phases {
        assert!(executed.contains(&name.as_str()), "unknown phase {name}");
    }

    // The trace file is one loadable Chrome-trace document whose
    // request span carries the same id and whose phase spans sum to
    // no more than the recorded request time.
    let trace = std::fs::read_to_string(&trace_path).expect("trace readable");
    let doc = Json::parse(&trace).expect("trace file is valid JSON after close");
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array");
    let root = events
        .iter()
        .find(|e| {
            e.get("name").and_then(Json::as_str) == Some("serve.request")
                && e.get("args")
                    .and_then(|a| a.get("trace_id"))
                    .and_then(Json::as_str)
                    == Some("e2e-trace-42")
        })
        .expect("a serve.request span labeled with the trace id");
    let root_tid = root.get("tid").and_then(Json::as_u64).expect("root tid");
    let root_dur = root.get("dur").and_then(Json::as_f64).expect("root dur");
    let phase_dur: f64 = events
        .iter()
        .filter(|e| {
            e.get("ph").and_then(Json::as_str) == Some("X")
                && e.get("tid").and_then(Json::as_u64) == Some(root_tid)
                && e.get("name").and_then(Json::as_str).is_some_and(|n| {
                    n.starts_with("serve.") && n != "serve.request" && n != "serve.compile"
                })
        })
        .filter_map(|e| e.get("dur").and_then(Json::as_f64))
        .sum();
    assert!(
        phase_dur <= root_dur * 1.001,
        "phase spans ({phase_dur} us) exceed the request span ({root_dur} us)"
    );
    assert!(
        root_dur * 1000.0 <= wall_ns as f64 * 1.5 + 1_000_000.0,
        "trace span ({root_dur} us) wildly exceeds reqlog wall ({wall_ns} ns)"
    );
}

#[test]
fn rolling_throughput_gauge_tracks_live_traffic_between_scrapes() {
    let bench_path = tmpfile("rolling_c17.bench");
    std::fs::write(&bench_path, C17).expect("bench written");
    let daemon = spawn_daemon(&[]);

    // Before any simulate traffic the live gauge has no samples; only
    // the startup warmup number exists under its own metric name.
    let before = get(&daemon.addr, "/metrics");
    assert_eq!(
        rolling_gauge(&before),
        None,
        "live gauge must not exist before traffic"
    );

    // A short loadgen burst; its JSON report embeds the server-side
    // sample scraped at end of run.
    let output = Command::new(env!("CARGO_BIN_EXE_udsim"))
        .args([
            "loadgen",
            "--addr",
            &daemon.addr,
            "--bench",
            bench_path.to_str().expect("utf8 path"),
            "--vectors",
            "64",
            "--concurrency",
            "2",
            "--duration-ms",
            "400",
            "--json",
            "-",
        ])
        .output()
        .expect("loadgen runs");
    assert!(output.status.success(), "{output:?}");
    let report =
        Json::parse(&String::from_utf8_lossy(&output.stdout)).expect("loadgen JSON parses");
    let server = report.get("server").expect("report embeds server sample");
    let samples = server
        .get("engine_vectors_per_s")
        .and_then(Json::as_arr)
        .expect("engine_vectors_per_s array");
    assert!(
        samples
            .iter()
            .any(|s| { s.get("vectors_per_s").and_then(Json::as_f64).unwrap_or(0.0) > 0.0 }),
        "loadgen saw no live throughput: {samples:?}"
    );

    // The gauge converged under the burst and keeps moving with new
    // traffic — no restart in between.
    let first = rolling_gauge(&get(&daemon.addr, "/metrics"))
        .expect("gauge exists after the loadgen burst");
    assert!(first > 0.0, "gauge should be positive, got {first}");
    for _ in 0..5 {
        let reply = post_simulate_traced(&daemon.addr, "rolling-refresh");
        assert!(reply.starts_with("HTTP/1.1 200"), "{reply}");
    }
    let second =
        rolling_gauge(&get(&daemon.addr, "/metrics")).expect("gauge persists across scrapes");
    assert!(
        (second - first).abs() > f64::EPSILON,
        "gauge did not move between scrapes: {first} vs {second}"
    );
    quit(daemon);
}
