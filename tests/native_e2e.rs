//! End-to-end proof that the emitted C actually compiles and runs: for
//! every native flavor (the PC-set method and each parallel
//! optimization level) at every arena word width, compile the emitted C
//! with the system C compiler, `dlopen` it, and cross-check its
//! waveforms vector by vector against the interpreted event-driven
//! baseline on the fixture circuits.
//!
//! The whole suite skips — with a visible notice on stderr — when no C
//! compiler is on `PATH` (`$UDS_CC` overrides the default `cc`), so
//! toolchain-free hosts stay green without silently losing coverage.

use unit_delay_sim::core::vectors::{Exhaustive, RandomVectors};
use unit_delay_sim::core::{build_native, compiler_available, crosscheck, WordWidth};
use unit_delay_sim::netlist::generators::adders::{ripple_carry_adder, AdderStyle};
use unit_delay_sim::netlist::generators::iscas::{c17, Iscas85};
use unit_delay_sim::netlist::generators::trees::mux_tree;
use unit_delay_sim::netlist::{NoopProbe, ResourceLimits};
use unit_delay_sim::prelude::*;

/// Every engine flavor the native builder can compile to C. The
/// PC-set method's stream is always 64-bit, so it is paired only with
/// [`WordWidth::W64`]; each parallel level runs at both widths.
fn flavors() -> Vec<(Engine, Vec<WordWidth>)> {
    let both = vec![WordWidth::W32, WordWidth::W64];
    vec![
        (Engine::PcSet, vec![WordWidth::W64]),
        (Engine::Parallel, both.clone()),
        (Engine::ParallelTrimming, both.clone()),
        (Engine::ParallelPathTracing, both.clone()),
        (Engine::ParallelPathTracingTrimming, both.clone()),
        (Engine::ParallelCycleBreaking, both),
    ]
}

/// True (after printing the visible notice) when the suite cannot run
/// because the host has no C compiler.
fn skip_without_compiler(test: &str) -> bool {
    if compiler_available() {
        return false;
    }
    eprintln!("SKIP {test}: no C compiler on PATH (set $UDS_CC to override) — native e2e not run");
    true
}

/// Cross-checks every flavor × width of `netlist` against the
/// interpreted event-driven baseline over `stimulus`.
fn check_all_flavors(netlist: &Netlist, stimulus: &[Vec<bool>]) {
    for (flavor, widths) in flavors() {
        for word in widths {
            let native = build_native(
                netlist,
                flavor,
                word,
                &ResourceLimits::unlimited(),
                &NoopProbe,
            )
            .unwrap_or_else(|e| panic!("{flavor} at w{} must build: {e}", word.bits()));
            assert_eq!(native.engine_name(), "native");
            let baseline = build_simulator(netlist, Engine::EventDriven).expect("baseline builds");
            let mut sims = vec![baseline, native];
            crosscheck::run(netlist, &mut sims, stimulus.iter().cloned()).unwrap_or_else(|e| {
                panic!(
                    "{flavor} at w{} diverged from the interpreter on {}: {e}",
                    word.bits(),
                    netlist.name()
                )
            });
        }
    }
}

#[test]
fn c17_exhaustive_every_flavor_and_width() {
    if skip_without_compiler("c17_exhaustive_every_flavor_and_width") {
        return;
    }
    let nl = c17();
    // Every consecutive pair of the 32 patterns, in both orders.
    let stimulus: Vec<Vec<bool>> = Exhaustive::new(5)
        .chain(Exhaustive::new(5).skip(1))
        .collect();
    check_all_flavors(&nl, &stimulus);
}

#[test]
fn generator_circuits_random_every_flavor_and_width() {
    if skip_without_compiler("generator_circuits_random_every_flavor_and_width") {
        return;
    }
    for nl in [
        ripple_carry_adder(6, AdderStyle::NativeXor).unwrap(),
        mux_tree(3).unwrap(),
    ] {
        let width = nl.primary_inputs().len();
        let stimulus: Vec<Vec<bool>> = RandomVectors::new(width, 0x17).take(24).collect();
        check_all_flavors(&nl, &stimulus);
    }
}

#[test]
fn c432_random_every_flavor_and_width() {
    if skip_without_compiler("c432_random_every_flavor_and_width") {
        return;
    }
    let nl = Iscas85::C432.build();
    let width = nl.primary_inputs().len();
    let stimulus: Vec<Vec<bool>> = RandomVectors::new(width, 1990).take(16).collect();
    check_all_flavors(&nl, &stimulus);
}
