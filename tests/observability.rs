//! End-to-end contract of the runtime-observability surface: `udsim
//! profile`, the `--trace` Chrome-timeline export, the `--progress`
//! NDJSON heartbeat stream, and the one-flag-owns-stdout rule they all
//! share.

use std::path::PathBuf;
use std::process::{Command, Output};

use unit_delay_sim::core::telemetry::json::Json;
use unit_delay_sim::core::{ACTIVITY_SCHEMA, PROGRESS_SCHEMA};

fn udsim(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_udsim"))
        .args(args)
        .output()
        .expect("udsim binary runs")
}

fn fixture(name: &str, contents: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    std::fs::create_dir_all(&dir).expect("tmpdir exists");
    let path = dir.join(name);
    std::fs::write(&path, contents).expect("fixture written");
    path
}

const C17: &str = "INPUT(1)\nINPUT(2)\nINPUT(3)\nINPUT(6)\nINPUT(7)\nOUTPUT(22)\nOUTPUT(23)\n\
                   10 = NAND(1, 3)\n11 = NAND(3, 6)\n16 = NAND(2, 11)\n19 = NAND(11, 7)\n\
                   22 = NAND(10, 16)\n23 = NAND(16, 19)\n";

/// Runs `profile … --json -` and returns the parsed activity report.
fn profile_doc(extra: &[&str]) -> Json {
    let path = fixture("prof17.bench", C17);
    let mut args = vec!["profile", path.to_str().unwrap(), "--vectors", "64"];
    args.extend_from_slice(extra);
    args.extend_from_slice(&["--json", "-"]);
    let out = udsim(&args);
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).expect("utf-8 stdout");
    Json::parse(stdout.trim_end()).expect("stdout is exactly one JSON document")
}

#[test]
fn profile_emits_a_schema_versioned_activity_report() {
    let doc = profile_doc(&[]);
    assert_eq!(
        doc.get("schema").and_then(Json::as_str),
        Some(ACTIVITY_SCHEMA)
    );
    assert_eq!(doc.get("vectors").and_then(Json::as_u64), Some(64));
    let total = doc.get("total_toggles").and_then(Json::as_u64).unwrap();
    assert!(total > 0, "64 random vectors must toggle something");
    let factor = doc.get("activity_factor").and_then(Json::as_f64).unwrap();
    assert!(factor > 0.0 && factor < 1.0, "{factor}");
    // Slot 0 never toggles: inputs change "at" time 0 by definition.
    let per_slot = doc.get("toggles_by_time").unwrap().as_arr().unwrap();
    assert_eq!(per_slot[0].as_u64(), Some(0));
    let hot = doc.get("hot_nets").unwrap().as_arr().unwrap();
    assert!(!hot.is_empty());
    assert!(hot[0].get("toggles").and_then(Json::as_u64).unwrap() > 0);
}

#[test]
fn profile_totals_are_engine_and_jobs_invariant() {
    let baseline = profile_doc(&[]);
    let expected = baseline.get("total_toggles").and_then(Json::as_u64);
    for extra in [
        &["--engine", "event-driven"][..],
        &["--engine", "pc-set"][..],
        &["--word", "32"][..],
        &["--jobs", "3"][..],
    ] {
        let doc = profile_doc(extra);
        assert_eq!(
            doc.get("total_toggles").and_then(Json::as_u64),
            expected,
            "{extra:?}: toggle counts are a circuit invariant, not an \
             engine/word/jobs artifact"
        );
    }
}

#[test]
fn simulate_trace_writes_per_shard_timelines_on_distinct_threads() {
    let bench = fixture("trace17.bench", C17);
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    let trace = dir.join("trace17.json");
    let out = udsim(&[
        "simulate",
        bench.to_str().unwrap(),
        "--vectors",
        "64",
        "--jobs",
        "2",
        "--trace",
        trace.to_str().unwrap(),
    ]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&trace).expect("trace written");
    let doc = Json::parse(text.trim_end()).expect("Chrome trace parses");
    let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
    let mut shard_tids: Vec<u64> = events
        .iter()
        .filter(|e| {
            e.get("ph").and_then(Json::as_str) == Some("X")
                && e.get("name")
                    .and_then(Json::as_str)
                    .is_some_and(|n| n.starts_with("batch.shard."))
        })
        .filter_map(|e| e.get("tid").and_then(Json::as_u64))
        .collect();
    shard_tids.sort_unstable();
    assert_eq!(shard_tids, vec![1, 2], "one timeline row per shard");
}

#[test]
fn progress_streams_parseable_heartbeats_to_stdout() {
    let bench = fixture("prog17.bench", C17);
    let out = udsim(&[
        "simulate",
        bench.to_str().unwrap(),
        "--vectors",
        "200",
        "--jobs",
        "2",
        "--progress",
        "-",
    ]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).expect("utf-8");
    let beats: Vec<Json> = stdout
        .lines()
        .map(|line| Json::parse(line).expect("every line is one JSON record"))
        .collect();
    assert!(beats.len() >= 2, "at least one heartbeat per shard");
    for beat in &beats {
        assert_eq!(
            beat.get("schema").and_then(Json::as_str),
            Some(PROGRESS_SCHEMA)
        );
        assert!(beat.get("vectors_per_sec").and_then(Json::as_f64).is_some());
    }
    // Each shard's final heartbeat reports completion.
    for shard in 0..2u64 {
        let last = beats
            .iter()
            .rfind(|b| b.get("shard").and_then(Json::as_u64) == Some(shard))
            .expect("shard reported");
        assert_eq!(last.get("finished"), Some(&Json::Bool(true)));
        assert_eq!(last.get("done"), last.get("total"));
    }
}

#[test]
fn short_batches_still_emit_a_final_heartbeat() {
    // A batch this small finishes well inside one heartbeat interval;
    // the completion record must arrive anyway — even for zero vectors.
    for vectors in ["0", "1"] {
        let bench = fixture("short17.bench", C17);
        let out = udsim(&[
            "simulate",
            bench.to_str().unwrap(),
            "--vectors",
            vectors,
            "--jobs",
            "2",
            "--progress",
            "-",
            "--progress-interval",
            "60000",
        ]);
        assert_eq!(
            out.status.code(),
            Some(0),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        let stdout = String::from_utf8(out.stdout).expect("utf-8");
        let beats: Vec<Json> = stdout
            .lines()
            .map(|line| Json::parse(line).expect("heartbeat parses"))
            .collect();
        assert!(!beats.is_empty(), "--vectors {vectors} was silent");
        assert!(
            beats
                .iter()
                .any(|b| b.get("finished") == Some(&Json::Bool(true))),
            "--vectors {vectors} never announced completion: {stdout}"
        );
    }
}

#[test]
fn progress_interval_zero_reports_every_vector() {
    let bench = fixture("eager17.bench", C17);
    let out = udsim(&[
        "simulate",
        bench.to_str().unwrap(),
        "--vectors",
        "40",
        "--jobs",
        "2",
        "--progress",
        "-",
        "--progress-interval",
        "0",
    ]);
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8(out.stdout).expect("utf-8");
    // 40 vectors + 2 final records, each a valid heartbeat.
    assert_eq!(stdout.lines().count(), 42, "{stdout}");
    for line in stdout.lines() {
        let beat = Json::parse(line).expect("heartbeat parses");
        assert_eq!(
            beat.get("schema").and_then(Json::as_str),
            Some(PROGRESS_SCHEMA)
        );
    }
}

#[test]
fn progress_interval_requires_progress() {
    let bench = fixture("lonely17.bench", C17);
    let out = udsim(&[
        "simulate",
        bench.to_str().unwrap(),
        "--jobs",
        "2",
        "--progress-interval",
        "50",
    ]);
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--progress-interval"), "{err}");
}

#[test]
fn two_stream_flags_cannot_both_claim_stdout() {
    let bench = fixture("clash17.bench", C17);
    let out = udsim(&[
        "simulate",
        bench.to_str().unwrap(),
        "--jobs",
        "2",
        "--stats",
        "-",
        "--progress",
        "-",
    ]);
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--stats"), "{err}");
    assert!(err.contains("--progress"), "{err}");
}

#[test]
fn progress_without_jobs_is_a_usage_error() {
    let bench = fixture("nojobs17.bench", C17);
    let out = udsim(&["simulate", bench.to_str().unwrap(), "--progress", "-"]);
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--jobs"), "{err}");
}

#[test]
fn human_profile_summary_moves_to_stderr_when_json_owns_stdout() {
    let bench = fixture("human17.bench", C17);
    let out = udsim(&[
        "profile",
        bench.to_str().unwrap(),
        "--vectors",
        "8",
        "--json",
        "-",
    ]);
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8(out.stdout).expect("utf-8");
    assert!(Json::parse(stdout.trim_end()).is_ok(), "pure JSON stdout");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("toggles"),
        "human summary still appears, on stderr: {err}"
    );
}
