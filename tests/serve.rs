//! End-to-end contract of `udsim serve`: a real daemon process on an
//! ephemeral port, driven over raw TCP. Pins the parts scripts and
//! scrapers depend on — the stderr `listening on` announcement, the
//! health/readiness probes, Prometheus `/metrics`, the compile-once
//! cache behavior (hit counter moves, rows stay byte-identical), the
//! `uds-reqlog-v1` request log, HTTP error statuses, and a clean
//! drain + final `--stats` snapshot through `/quitquitquit`.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};

use unit_delay_sim::core::telemetry::json::Json;

const C17: &str = "INPUT(1)\nINPUT(2)\nINPUT(3)\nINPUT(6)\nINPUT(7)\nOUTPUT(22)\nOUTPUT(23)\n\
                   10 = NAND(1, 3)\n11 = NAND(3, 6)\n16 = NAND(2, 11)\n19 = NAND(11, 7)\n\
                   22 = NAND(10, 16)\n23 = NAND(16, 19)\n";

fn tmpfile(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    std::fs::create_dir_all(&dir).expect("tmpdir exists");
    dir.join(name)
}

/// A running daemon plus the address it announced. Killed on drop so a
/// failing test never leaks the process.
struct Daemon {
    child: Child,
    addr: String,
    stderr: BufReader<std::process::ChildStderr>,
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn spawn_daemon(extra: &[&str]) -> Daemon {
    let mut child = Command::new(env!("CARGO_BIN_EXE_udsim"))
        .args(["serve", "--addr", "127.0.0.1:0", "--allow-quit"])
        .args(extra)
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("daemon spawns");
    let mut stderr = BufReader::new(child.stderr.take().expect("stderr piped"));
    let mut line = String::new();
    stderr.read_line(&mut line).expect("announcement line");
    let addr = line
        .split("http://")
        .nth(1)
        .unwrap_or_else(|| panic!("no announcement in {line:?}"))
        .trim()
        .to_owned();
    Daemon {
        child,
        addr,
        stderr,
    }
}

/// One raw HTTP/1.1 exchange; returns (status, body).
fn exchange(addr: &str, raw: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(raw.as_bytes()).expect("send");
    let mut reply = String::new();
    stream.read_to_string(&mut reply).expect("full response");
    let status = reply
        .split_whitespace()
        .nth(1)
        .expect("status line")
        .parse()
        .expect("numeric status");
    let body = reply
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_owned())
        .unwrap_or_default();
    (status, body)
}

fn get(addr: &str, path: &str) -> (u16, String) {
    exchange(
        addr,
        &format!("GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"),
    )
}

fn post(addr: &str, path: &str, body: &str) -> (u16, String) {
    exchange(
        addr,
        &format!(
            "POST {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\
             Content-Length: {}\r\n\r\n{body}",
            body.len()
        ),
    )
}

fn simulate_body() -> String {
    format!(
        "{{\"bench\":{},\"name\":\"c17\",\"vectors\":[[0,1,0,1,0],[1,1,1,1,1]]}}",
        Json::Str(C17.to_owned()).render()
    )
}

/// Asks the daemon to drain and waits for a clean exit.
fn quit(mut daemon: Daemon) {
    let (status, _) = post(&daemon.addr, "/quitquitquit", "");
    assert_eq!(status, 200);
    let exit = daemon.child.wait().expect("daemon exits");
    assert_eq!(exit.code(), Some(0), "clean shutdown exits 0");
    let mut rest = String::new();
    daemon
        .stderr
        .read_to_string(&mut rest)
        .expect("stderr drains");
    assert!(rest.contains("goodbye"), "{rest}");
}

#[test]
fn lifecycle_probes_metrics_and_errors() {
    let daemon = spawn_daemon(&[]);
    let addr = &daemon.addr;

    assert_eq!(get(addr, "/healthz"), (200, "ok\n".to_owned()));
    assert_eq!(get(addr, "/readyz"), (200, "ready\n".to_owned()));
    let (status, metrics) = get(addr, "/metrics");
    assert_eq!(status, 200);
    assert!(metrics.contains("# TYPE uds_build_info gauge"), "{metrics}");
    assert!(metrics.contains("uds_serve_requests"), "{metrics}");
    // The startup self-measurement: the perf-class gauge family is
    // exported before the first request is answered, and the class
    // label rides build_info.
    assert!(metrics.contains("# TYPE uds_perf_class gauge"), "{metrics}");
    let class_value = metrics
        .lines()
        .find_map(|l| l.strip_prefix("uds_perf_class "))
        .unwrap_or_else(|| panic!("no uds_perf_class sample in {metrics}"))
        .trim()
        .parse::<u64>()
        .expect("perf class is an integer code");
    assert!(class_value <= 3, "class codes are 0..=3, got {class_value}");
    assert!(metrics.contains("uds_perf_class_score_milli"), "{metrics}");
    assert!(
        metrics.contains("uds_perf_class_warmup_vectors_per_s"),
        "{metrics}"
    );
    assert!(metrics.contains("perf_class=\""), "{metrics}");

    assert_eq!(get(addr, "/no-such-route").0, 404);
    assert_eq!(post(addr, "/metrics", "x").0, 405);
    assert_eq!(post(addr, "/simulate", "not json").0, 400);
    let (status, body) = post(addr, "/simulate", "{\"bench\":\"INPUT(a)\\ngarbage\"}");
    assert_eq!(status, 400, "{body}");
    // Raw protocol violations answer with their own 4xx family.
    assert_eq!(
        exchange(addr, "POST /simulate HTTP/1.1\r\nHost: t\r\n\r\n").0,
        411,
        "POST without Content-Length"
    );

    quit(daemon);
}

#[test]
fn cache_serves_repeats_without_recompiling() {
    let reqlog = tmpfile("serve_reqlog.ndjson");
    let stats = tmpfile("serve_stats.json");
    let daemon = spawn_daemon(&[
        "--reqlog",
        reqlog.to_str().unwrap(),
        "--stats",
        stats.to_str().unwrap(),
    ]);
    let addr = &daemon.addr;

    let (status, first) = post(addr, "/simulate", &simulate_body());
    assert_eq!(status, 200, "{first}");
    let (status, second) = post(addr, "/simulate", &simulate_body());
    assert_eq!(status, 200, "{second}");

    let a = Json::parse(first.trim()).expect("first response parses");
    let b = Json::parse(second.trim()).expect("second response parses");
    assert_eq!(a.get("schema").unwrap().as_str(), Some("uds-serve-v1"));
    assert_eq!(a.get("circuit").unwrap().as_str(), Some("c17"));
    assert_eq!(a.get("cache").unwrap().as_str(), Some("miss"));
    assert_eq!(b.get("cache").unwrap().as_str(), Some("hit"));
    assert_eq!(
        a.get("rows").unwrap(),
        b.get("rows").unwrap(),
        "cached answers are byte-identical"
    );
    assert_eq!(
        a.get("netlist_hash").unwrap().as_str(),
        b.get("netlist_hash").unwrap().as_str()
    );

    // The hit is observable in /metrics before shutdown.
    let (_, metrics) = get(addr, "/metrics");
    assert!(metrics.contains("uds_cache_hits 1"), "{metrics}");
    assert!(metrics.contains("uds_cache_misses 1"), "{metrics}");
    assert!(metrics.contains("uds_cache_entries 1"), "{metrics}");

    quit(daemon);

    // The final stats snapshot: exactly one serve.compile span for two
    // requests — the recompile never happened — plus the counters.
    let stats_doc = Json::parse(
        std::fs::read_to_string(&stats)
            .expect("stats written")
            .trim(),
    )
    .expect("stats parse");
    let spans = stats_doc.get("spans").expect("spans").as_arr().unwrap();
    let compiles = spans
        .iter()
        .filter(|s| s.get("name").and_then(Json::as_str) == Some("serve.compile"))
        .count();
    assert_eq!(compiles, 1, "one compile for two identical requests");
    let counters = stats_doc.get("counters").expect("counters");
    assert_eq!(counters.get("cache.hits").unwrap().as_u64(), Some(1));
    // Two simulates, the /metrics scrape, and the quit itself.
    assert_eq!(counters.get("serve.requests").unwrap().as_u64(), Some(4));
    // The startup perf self-measurement survives into the final
    // snapshot: the gauge family plus the build_info class label.
    let gauges = stats_doc.get("gauges").expect("gauges");
    let class = gauges
        .get("perf_class")
        .and_then(Json::as_u64)
        .expect("perf_class gauge in stats");
    assert!(class <= 3, "class codes are 0..=3, got {class}");
    assert!(gauges.get("perf_class.score_milli").is_some());
    assert!(gauges.get("perf_class.warmup_vectors_per_s").is_some());
    let labels = stats_doc.get("labels").expect("labels");
    let class_label = labels
        .get("build.perf_class")
        .and_then(Json::as_str)
        .expect("build.perf_class label in stats");
    assert!(
        ["degraded", "slow", "baseline", "fast"].contains(&class_label),
        "{class_label}"
    );

    // The request log: one schema-tagged line per request, in order.
    let log = std::fs::read_to_string(&reqlog).expect("reqlog written");
    let lines: Vec<Json> = log
        .lines()
        .map(|l| Json::parse(l).expect("reqlog line parses"))
        .collect();
    assert_eq!(lines.len(), 4, "{log}");
    for line in &lines {
        assert_eq!(line.get("schema").unwrap().as_str(), Some("uds-reqlog-v1"));
        assert!(line.get("status").unwrap().as_u64().is_some());
        assert!(line.get("wall_ns").unwrap().as_u64().is_some());
    }
    assert_eq!(lines[0].get("cache").unwrap().as_str(), Some("miss"));
    assert_eq!(lines[1].get("cache").unwrap().as_str(), Some("hit"));
    assert_eq!(
        lines[0].get("netlist_hash").unwrap().as_str(),
        lines[1].get("netlist_hash").unwrap().as_str()
    );
    assert_eq!(lines[2].get("path").unwrap().as_str(), Some("/metrics"));
    assert_eq!(
        lines[3].get("path").unwrap().as_str(),
        Some("/quitquitquit")
    );
}

#[test]
fn quit_is_forbidden_without_the_flag() {
    // Spawn without --allow-quit: need a bespoke spawn.
    let mut child = Command::new(env!("CARGO_BIN_EXE_udsim"))
        .args(["serve", "--addr", "127.0.0.1:0"])
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("daemon spawns");
    let mut stderr = BufReader::new(child.stderr.take().expect("stderr piped"));
    let mut line = String::new();
    stderr.read_line(&mut line).expect("announcement line");
    let addr = line.split("http://").nth(1).expect("announcement").trim();
    let (status, body) = post(addr, "/quitquitquit", "");
    assert_eq!(status, 403, "{body}");
    // Still alive and serving afterwards.
    assert_eq!(get(addr, "/healthz").0, 200);
    let _ = child.kill();
    let _ = child.wait();
}

#[test]
fn engine_and_jobs_requests_agree_with_defaults() {
    let daemon = spawn_daemon(&[]);
    let addr = &daemon.addr;

    let base = simulate_body();
    let pinned = base.replacen(
        "\"vectors\"",
        "\"engine\":\"event-driven\",\"jobs\":2,\"vectors\"",
        1,
    );
    let (status, default_reply) = post(addr, "/simulate", &base);
    assert_eq!(status, 200, "{default_reply}");
    let (status, pinned_reply) = post(addr, "/simulate", &pinned);
    assert_eq!(status, 200, "{pinned_reply}");
    let a = Json::parse(default_reply.trim()).unwrap();
    let b = Json::parse(pinned_reply.trim()).unwrap();
    assert_eq!(b.get("engine").unwrap().as_str(), Some("event-driven"));
    assert_eq!(b.get("jobs").unwrap().as_u64(), Some(2));
    assert_eq!(
        a.get("rows").unwrap(),
        b.get("rows").unwrap(),
        "every engine and sharding computes the same rows"
    );
    // A different engine is a different cache key: both were misses.
    assert_eq!(a.get("cache").unwrap().as_str(), Some("miss"));
    assert_eq!(b.get("cache").unwrap().as_str(), Some("miss"));

    quit(daemon);
}

#[test]
fn unknown_engine_and_bad_vectors_are_client_errors() {
    let daemon = spawn_daemon(&[]);
    let addr = &daemon.addr;

    let bad_engine =
        simulate_body().replacen("\"vectors\"", "\"engine\":\"warp-drive\",\"vectors\"", 1);
    let (status, body) = post(addr, "/simulate", &bad_engine);
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("warp-drive"), "{body}");

    let wrong_width = format!(
        "{{\"bench\":{},\"vectors\":[[1,0]]}}",
        Json::Str(C17.to_owned()).render()
    );
    let (status, body) = post(addr, "/simulate", &wrong_width);
    assert_eq!(status, 400, "{body}");

    let no_stimulus = format!("{{\"bench\":{}}}", Json::Str(C17.to_owned()).render());
    let (status, body) = post(addr, "/simulate", &no_stimulus);
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("stimulus"), "{body}");

    quit(daemon);
}
