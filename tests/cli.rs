//! End-to-end tests of the `udsim` binary: every failure class must
//! exit with its documented code and say something useful on stderr.
//! Exit codes are part of the CLI's contract (scripts route on them),
//! so these tests pin them: 0 success, 2 usage, 3 parse/read,
//! 4 structural, 5 budget, 6 panic, 7 mismatch.

use std::path::PathBuf;
use std::process::{Command, Output};

fn udsim(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_udsim"))
        .args(args)
        .output()
        .expect("udsim binary runs")
}

fn stderr(output: &Output) -> String {
    String::from_utf8_lossy(&output.stderr).into_owned()
}

/// Writes a fixture under the target-scoped temp dir and returns its path.
fn fixture(name: &str, contents: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    std::fs::create_dir_all(&dir).expect("tmpdir exists");
    let path = dir.join(name);
    std::fs::write(&path, contents).expect("fixture written");
    path
}

const C17: &str = "INPUT(1)\nINPUT(2)\nINPUT(3)\nINPUT(6)\nINPUT(7)\nOUTPUT(22)\nOUTPUT(23)\n\
                   10 = NAND(1, 3)\n11 = NAND(3, 6)\n16 = NAND(2, 11)\n19 = NAND(11, 7)\n\
                   22 = NAND(10, 16)\n23 = NAND(16, 19)\n";

#[test]
fn success_exits_zero() {
    let path = fixture("ok.bench", C17);
    let out = udsim(&["simulate", path.to_str().unwrap(), "--vectors", "2"]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
}

#[test]
fn missing_file_exits_with_parse_code_and_names_the_file() {
    let out = udsim(&["simulate", "definitely-not-here.bench"]);
    assert_eq!(out.status.code(), Some(3));
    let err = stderr(&out);
    assert!(err.contains("definitely-not-here.bench"), "{err}");
}

#[test]
fn malformed_bench_exits_with_parse_code_and_a_span() {
    let path = fixture("garbage.bench", "INPUT(a)\nwhat even is this\n");
    let out = udsim(&["simulate", path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(3));
    let err = stderr(&out);
    assert!(err.contains("line 2"), "{err}");
}

#[test]
fn cyclic_netlist_exits_with_structural_code() {
    let path = fixture(
        "cycle.bench",
        "INPUT(a)\nOUTPUT(y)\ny = AND(x, a)\nx = AND(y, a)\n",
    );
    let out = udsim(&["simulate", path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(4), "{}", stderr(&out));
    let err = stderr(&out);
    assert!(err.contains("cycle") || err.contains("Cycle"), "{err}");
}

#[test]
fn sequential_netlist_exits_with_structural_code() {
    let path = fixture("seq.bench", "INPUT(d)\nOUTPUT(q)\nq = DFF(d)\n");
    let out = udsim(&["simulate", path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(4), "{}", stderr(&out));
}

#[test]
fn unknown_engine_exits_with_usage_code_and_lists_engines() {
    let path = fixture("ok2.bench", C17);
    let out = udsim(&["simulate", path.to_str().unwrap(), "--engine", "warp-drive"]);
    assert_eq!(out.status.code(), Some(2));
    let err = stderr(&out);
    assert!(err.contains("warp-drive"), "{err}");
    assert!(err.contains("pc-set"), "should list valid engines: {err}");
}

#[test]
fn exhausted_budget_exits_with_budget_code() {
    let path = fixture("ok3.bench", C17);
    let out = udsim(&["simulate", path.to_str().unwrap(), "--budget", "depth=1"]);
    assert_eq!(out.status.code(), Some(5), "{}", stderr(&out));
    let err = stderr(&out);
    assert!(err.contains("budget exceeded"), "{err}");
    assert!(err.contains("depth"), "{err}");
}

#[test]
fn exhausted_budget_with_fallback_still_exits_budget_when_nothing_fits() {
    // depth=1 rejects every engine in the chain, including the
    // event-driven baseline — the chain exhausts with the budget class.
    let path = fixture("ok4.bench", C17);
    let out = udsim(&[
        "simulate",
        path.to_str().unwrap(),
        "--fallback",
        "--budget",
        "depth=1",
    ]);
    assert_eq!(out.status.code(), Some(5), "{}", stderr(&out));
}

#[test]
fn fallback_degrades_and_reports_on_stderr() {
    // A 40-deep buffer chain with a one-word field budget: the
    // unoptimized parallel engine cannot fit, path tracing can. Asking
    // for `parallel` with --fallback must degrade, succeed, and say so.
    let mut text = String::from("INPUT(a)\n");
    let mut prev = "a".to_owned();
    for i in 0..40 {
        text.push_str(&format!("b{i} = BUF({prev})\n"));
        prev = format!("b{i}");
    }
    text.push_str(&format!("OUTPUT({prev})\n"));
    let path = fixture("chain.bench", &text);
    let out = udsim(&[
        "simulate",
        path.to_str().unwrap(),
        "--fallback",
        "--engine",
        "parallel",
        "--budget",
        "field-words=1",
        "--crosscheck",
        "--vectors",
        "3",
    ]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    let err = stderr(&out);
    assert!(err.contains("fallback: parallel abandoned"), "{err}");
    assert!(err.contains("cross-check"), "{err}");
}

#[test]
fn crosscheck_without_fallback_is_a_usage_error() {
    let path = fixture("ok5.bench", C17);
    let out = udsim(&["simulate", path.to_str().unwrap(), "--crosscheck"]);
    assert_eq!(out.status.code(), Some(2), "{}", stderr(&out));
}

#[test]
fn bad_budget_spec_is_a_usage_error() {
    let path = fixture("ok6.bench", C17);
    for spec in [
        "depth",
        "depth=abc",
        "frobs=3",
        "memory=999999999999999999G",
    ] {
        let out = udsim(&["simulate", path.to_str().unwrap(), "--budget", spec]);
        assert_eq!(
            out.status.code(),
            Some(2),
            "spec `{spec}`: {}",
            stderr(&out)
        );
    }
}

#[test]
fn budget_spec_accepts_production_and_suffixed_memory() {
    let path = fixture("ok7.bench", C17);
    for spec in [
        "production",
        "memory=256M,depth=4096",
        "gates=1000,inputs=64",
    ] {
        let out = udsim(&[
            "simulate",
            path.to_str().unwrap(),
            "--budget",
            spec,
            "--vectors",
            "1",
        ]);
        assert_eq!(
            out.status.code(),
            Some(0),
            "spec `{spec}`: {}",
            stderr(&out)
        );
    }
}

#[test]
fn unwritable_stats_path_exits_with_usage_code() {
    let path = fixture("ok8.bench", C17);
    let out = udsim(&[
        "simulate",
        path.to_str().unwrap(),
        "--vectors",
        "1",
        "--stats",
        "/nonexistent-dir-for-udsim-test/out.json",
    ]);
    assert_eq!(out.status.code(), Some(2), "{}", stderr(&out));
    let err = stderr(&out);
    assert!(err.contains("out.json"), "should name the path: {err}");
}

#[test]
fn batch_output_is_byte_identical_to_sequential() {
    let path = fixture("batch.bench", C17);
    let sequential = udsim(&["simulate", path.to_str().unwrap(), "--vectors", "20"]);
    assert_eq!(sequential.status.code(), Some(0), "{}", stderr(&sequential));
    let batched = udsim(&[
        "simulate",
        path.to_str().unwrap(),
        "--vectors",
        "20",
        "--jobs",
        "3",
    ]);
    assert_eq!(batched.status.code(), Some(0), "{}", stderr(&batched));
    assert_eq!(
        sequential.stdout, batched.stdout,
        "--jobs 3 must not change a single output byte"
    );
    assert!(stderr(&batched).contains("shard"), "{}", stderr(&batched));
}

#[test]
fn batch_crosscheck_passes_and_reports() {
    let path = fixture("batch2.bench", C17);
    let out = udsim(&[
        "simulate",
        path.to_str().unwrap(),
        "--vectors",
        "16",
        "--jobs",
        "2",
        "--crosscheck",
    ]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    let err = stderr(&out);
    assert!(err.contains("cross-check"), "{err}");
    assert!(err.contains("matches the sequential run"), "{err}");
}

#[test]
fn batch_with_vcd_is_a_usage_error() {
    let path = fixture("batch3.bench", C17);
    let vcd = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("batch3.vcd");
    let out = udsim(&[
        "simulate",
        path.to_str().unwrap(),
        "--jobs",
        "2",
        "--vcd",
        vcd.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(2), "{}", stderr(&out));
    assert!(stderr(&out).contains("--vcd"), "{}", stderr(&out));
}

#[test]
fn zero_jobs_is_a_usage_error() {
    let path = fixture("batch4.bench", C17);
    let out = udsim(&["simulate", path.to_str().unwrap(), "--jobs", "0"]);
    assert_eq!(out.status.code(), Some(2), "{}", stderr(&out));
}

#[test]
fn bad_word_width_is_a_usage_error() {
    let path = fixture("batch5.bench", C17);
    let out = udsim(&["simulate", path.to_str().unwrap(), "--word", "48"]);
    assert_eq!(out.status.code(), Some(2), "{}", stderr(&out));
    let err = stderr(&out);
    assert!(err.contains("48"), "{err}");
}

#[test]
fn engines_subcommand_lists_every_engine() {
    let out = udsim(&["engines"]);
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    for name in ["event-driven", "pc-set", "parallel", "parallel+pt+trim"] {
        assert!(stdout.contains(name), "{stdout}");
    }
}

#[test]
fn unknown_command_exits_with_usage_code() {
    let out = udsim(&["frobnicate"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("usage"), "{}", stderr(&out));
}
