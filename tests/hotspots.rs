//! End-to-end and property coverage of the hot-path execution
//! profiler (`udsim hotspots`, `uds_core::hotspot`).
//!
//! Pins the contracts the tooling depends on: the folded output is
//! valid collapsed-stack format (every line `stack N` with `N > 0`),
//! `--json -` and `--folded -` cannot both claim stdout (exit 2 naming
//! both flags, the same StreamContract every `-` flag follows), the
//! per-level self-times sum to within 20% of the profiled simulate
//! span across engines × word widths × job counts, and the leveled
//! entry point is behaviorally identical to the plain one — profiling
//! changes where time is *attributed*, never what the circuit computes.

use std::path::PathBuf;
use std::process::Command;

use unit_delay_sim::core::telemetry::json::Json;
use unit_delay_sim::core::{hotspot, DefaultEngineFactory, Engine, GuardedSimulator, WordWidth};
use unit_delay_sim::netlist::generators::iscas::Iscas85;
use unit_delay_sim::netlist::{bench_format, ResourceLimits};
use unit_delay_sim::prelude::Netlist;

fn udsim() -> Command {
    Command::new(env!("CARGO_BIN_EXE_udsim"))
}

/// Writes the synthetic c432 stand-in as a `.bench` fixture.
fn c432_fixture(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    std::fs::create_dir_all(&dir).expect("tmpdir exists");
    let path = dir.join(name);
    std::fs::write(&path, bench_format::write(&Iscas85::C432.build())).expect("fixture written");
    path
}

/// A deterministic stimulus stream: `n` vectors of `width` bits.
fn patterns(n: usize, width: usize) -> Vec<Vec<bool>> {
    (0..n)
        .map(|i| {
            (0..width)
                .map(|b| (i.wrapping_mul(2_654_435_761) >> (b % 31)) & 1 != 0)
                .collect()
        })
        .collect()
}

fn guard_for(nl: &Netlist, engine: Engine, word: WordWidth) -> GuardedSimulator {
    GuardedSimulator::with_factory(
        nl,
        ResourceLimits::unlimited(),
        &[engine],
        Box::new(DefaultEngineFactory::with_word(word)),
    )
    .expect("engine compiles")
}

#[test]
fn json_and_folded_cannot_both_claim_stdout() {
    let bench = c432_fixture("hotspots_conflict.bench");
    let output = udsim()
        .args([
            "hotspots",
            bench.to_str().unwrap(),
            "--json",
            "-",
            "--folded",
            "-",
        ])
        .output()
        .expect("udsim runs");
    assert_eq!(output.status.code(), Some(2), "{output:?}");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("--json"),
        "conflict must name --json: {stderr}"
    );
    assert!(
        stderr.contains("--folded"),
        "conflict must name --folded: {stderr}"
    );
}

#[test]
fn folded_output_is_valid_collapsed_stack_on_c432() {
    let bench = c432_fixture("hotspots_folded.bench");
    for engine in ["pc-set", "parallel+pt+trim"] {
        let output = udsim()
            .args([
                "hotspots",
                bench.to_str().unwrap(),
                "--engine",
                engine,
                "--vectors",
                "256",
                "--folded",
                "-",
            ])
            .output()
            .expect("udsim runs");
        assert!(output.status.success(), "{output:?}");
        let folded = String::from_utf8(output.stdout).expect("utf8 folded output");
        assert!(!folded.trim().is_empty(), "no folded lines for {engine}");
        for line in folded.lines() {
            let (stack, count) = line
                .rsplit_once(' ')
                .unwrap_or_else(|| panic!("not `stack N`: {line:?}"));
            let frames: Vec<&str> = stack.split(';').collect();
            assert_eq!(frames.len(), 2, "{line:?}");
            assert_eq!(frames[0], engine, "{line:?}");
            assert!(frames[1].starts_with("level_"), "{line:?}");
            frames[1]["level_".len()..]
                .parse::<usize>()
                .unwrap_or_else(|_| panic!("level frame not numeric: {line:?}"));
            let n: u64 = count
                .parse()
                .unwrap_or_else(|_| panic!("count not numeric: {line:?}"));
            assert!(n > 0, "folded counts must be positive: {line:?}");
        }
    }
}

#[test]
fn cli_json_report_sums_within_20pct_of_span_on_c432() {
    let bench = c432_fixture("hotspots_json.bench");
    for engine in ["pc-set", "parallel+pt+trim"] {
        let output = udsim()
            .args([
                "hotspots",
                bench.to_str().unwrap(),
                "--engine",
                engine,
                "--vectors",
                "512",
                "--json",
                "-",
            ])
            .output()
            .expect("udsim runs");
        assert!(output.status.success(), "{output:?}");
        let doc = Json::parse(&String::from_utf8_lossy(&output.stdout)).expect("JSON parses");
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some("uds-hotspot-v1")
        );
        let span = doc.get("span_ns").and_then(Json::as_u64).expect("span_ns");
        let levels = doc.get("levels").and_then(Json::as_arr).expect("levels");
        let attributed: u64 = levels
            .iter()
            .filter_map(|l| l.get("self_ns").and_then(Json::as_u64))
            .sum();
        let totals = doc
            .get("totals")
            .and_then(|t| t.get("self_ns"))
            .and_then(Json::as_u64)
            .expect("totals.self_ns");
        assert_eq!(attributed, totals, "levels must sum to the totals line");
        assert!(
            attributed <= span,
            "{engine}: attributed {attributed} exceeds span {span}"
        );
        assert!(
            attributed as f64 >= span as f64 * 0.8,
            "{engine}: attributed {attributed} is below 80% of span {span}"
        );
    }
}

#[test]
fn self_times_sum_within_20pct_of_span_across_engines_words_jobs() {
    let nl = Iscas85::C432.build();
    let vectors = patterns(512, nl.primary_inputs().len());
    for engine in [
        Engine::PcSet,
        Engine::Parallel,
        Engine::ParallelPathTracingTrimming,
    ] {
        for word in [WordWidth::W32, WordWidth::W64] {
            for jobs in [1usize, 2] {
                let guard = guard_for(&nl, engine, word);
                let report = hotspot::collect(&nl, &guard, &vectors, jobs, word.bits())
                    .expect("collect succeeds");
                let attributed = report.measured.total_self_ns();
                let span = report.span_ns;
                assert!(span > 0, "{engine} word={word:?} jobs={jobs}");
                assert!(
                    attributed <= span,
                    "{engine} word={word:?} jobs={jobs}: {attributed} > {span}"
                );
                assert!(
                    attributed as f64 >= span as f64 * 0.8,
                    "{engine} word={word:?} jobs={jobs}: \
                     attributed {attributed} below 80% of span {span}"
                );
                assert_eq!(report.measured.vectors, vectors.len() as u64);
            }
        }
    }
}

#[test]
fn leveled_entry_point_matches_plain_simulation_exactly() {
    let nl = Iscas85::C432.build();
    let vectors = patterns(64, nl.primary_inputs().len());
    let outputs = nl.primary_outputs().to_vec();
    for engine in [
        Engine::EventDriven,
        Engine::PcSet,
        Engine::ParallelPathTracingTrimming,
    ] {
        let mut plain = guard_for(&nl, engine, WordWidth::W32);
        let mut leveled = guard_for(&nl, engine, WordWidth::W32);
        let mut profile = unit_delay_sim::netlist::LevelProfile::default();
        for vector in &vectors {
            plain.simulate_vector(vector).expect("plain run");
            leveled
                .simulate_vector_leveled(vector, &mut profile)
                .expect("leveled run");
            for &po in &outputs {
                assert_eq!(
                    plain.final_value(po),
                    leveled.final_value(po),
                    "{engine}: leveled run diverged from the plain run"
                );
            }
        }
        assert!(
            profile.total_self_ns() > 0,
            "{engine}: the leveled run must attribute time"
        );
    }
}
