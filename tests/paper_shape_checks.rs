//! Deterministic regression checks for the paper's evaluation shapes.
//!
//! The wall-clock tables live in `uds-bench`; these tests pin the
//! *deterministic* quantities those tables rest on — generated-code
//! size, word-op counts, retained shifts, bit-field widths — so a
//! regression in any compiler shows up as a test failure rather than a
//! silently different benchmark table.

use unit_delay_sim::netlist::generators::iscas::Iscas85;
use unit_delay_sim::netlist::levelize;
use unit_delay_sim::parallel::{cycle_breaking, path_tracing, Optimization, ParallelSimulator};
use unit_delay_sim::pcset::PcSetSimulator;

fn word_ops(nl: &unit_delay_sim::prelude::Netlist, optimization: Optimization) -> usize {
    ParallelSimulator::compile(nl, optimization)
        .expect("suite circuits are combinational")
        .stats()
        .word_ops
}

#[test]
fn trimming_never_adds_ops_and_helps_multiword() {
    // Fig. 20's shape: no-op on 1-word circuits, 20-40% off on
    // multi-word ones.
    for circuit in Iscas85::ALL {
        let nl = circuit.build();
        let unopt = word_ops(&nl, Optimization::None);
        let trimmed = word_ops(&nl, Optimization::Trimming);
        assert!(trimmed <= unopt, "{circuit}");
        if circuit.target().words == 1 {
            assert_eq!(trimmed, unopt, "{circuit}: trimming must be a no-op");
        } else {
            let gain = 1.0 - trimmed as f64 / unopt as f64;
            assert!(
                (0.10..=0.60).contains(&gain),
                "{circuit}: trimming gain {gain:.2} outside the plausible band"
            );
        }
    }
}

#[test]
fn shift_elimination_halves_the_ops_on_average() {
    // Fig. 24's shape: path tracing + trimming removes 33-80% of ops,
    // averaging ~50% (the paper's 47% runtime gain).
    let mut total_gain = 0.0;
    for circuit in Iscas85::ALL {
        let nl = circuit.build();
        let unopt = word_ops(&nl, Optimization::None);
        let optimized = word_ops(&nl, Optimization::PathTracingTrimming);
        let gain = 1.0 - optimized as f64 / unopt as f64;
        assert!(
            (0.25..=0.85).contains(&gain),
            "{circuit}: combined gain {gain:.2} outside the paper band (24%..84%)"
        );
        total_gain += gain;
    }
    let average = total_gain / 10.0;
    assert!(
        (0.40..=0.60).contains(&average),
        "average gain {average:.2} drifted from the paper's 47%"
    );
}

#[test]
fn cycle_breaking_is_worse_than_path_tracing() {
    // Fig. 23's conclusion: bit-field expansion negates cycle breaking's
    // eliminated shifts on the larger circuits.
    let mut cycle_breaking_wins = 0;
    for circuit in Iscas85::ALL {
        let nl = circuit.build();
        let pt = word_ops(&nl, Optimization::PathTracing);
        let cb = word_ops(&nl, Optimization::CycleBreaking);
        if cb < pt {
            cycle_breaking_wins += 1;
        }
    }
    assert!(
        cycle_breaking_wins <= 3,
        "cycle breaking won {cycle_breaking_wins}/10 circuits; the paper has it losing almost everywhere"
    );
}

#[test]
fn path_tracing_never_expands_widths_cycle_breaking_does() {
    // Fig. 22's prose claims.
    let mut cb_expanded = 0;
    for circuit in Iscas85::ALL {
        let nl = circuit.build();
        let levels = levelize(&nl).unwrap();
        let unopt_width = levels.depth + 1;
        let pt = path_tracing::align(&nl).unwrap().stats(&nl, &levels);
        let cb = cycle_breaking::align(&nl)
            .unwrap()
            .alignment
            .stats(&nl, &levels);
        assert!(pt.max_width_bits <= unopt_width, "{circuit}");
        if cb.max_width_bits > unopt_width {
            cb_expanded += 1;
        }
    }
    assert!(
        cb_expanded >= 7,
        "cycle breaking expanded only {cb_expanded}/10 bit-fields; the paper reports it expanding greatly"
    );
}

#[test]
fn retained_shifts_orderings() {
    // Fig. 21's shape: both algorithms retain fewer shifts than
    // one-per-gate; unoptimized equals the gate count exactly.
    for circuit in Iscas85::ALL {
        let nl = circuit.build();
        let levels = levelize(&nl).unwrap();
        let pt = path_tracing::align(&nl).unwrap();
        pt.validate(&nl, &levels).unwrap();
        let retained = pt.retained_shifts(&nl);
        assert!(
            retained < nl.gate_count(),
            "{circuit}: path tracing retained {retained} >= {} gates",
            nl.gate_count()
        );
    }
}

#[test]
fn pcset_code_size_dwarfs_parallel() {
    // §3's motivation: the PC-set method generates far more code. The
    // paper's c6288 figure is >100k lines; the stand-in must stay in
    // that regime and the parallel technique must cut it by >2x.
    use unit_delay_sim::parallel::codegen_c as par_c;
    use unit_delay_sim::pcset::codegen_c as pc_c;
    let nl = Iscas85::C6288.build();
    let pcset = PcSetSimulator::compile(&nl).unwrap();
    let parallel = ParallelSimulator::compile(&nl, Optimization::None).unwrap();
    let pcset_lines = pc_c::line_count(&nl, &pcset).unwrap();
    let parallel_lines = par_c::line_count(&nl, &parallel).unwrap();
    assert!(
        pcset_lines > 100_000,
        "c6288 pc-set code shrank to {pcset_lines} lines"
    );
    assert!(
        parallel_lines * 2 < pcset_lines,
        "parallel ({parallel_lines}) no longer dwarfed by pc-set ({pcset_lines})"
    );
}

#[test]
fn c2670_pc_sets_stay_anomalously_small() {
    // Fig. 19's anomaly depends on this calibration: c2670's PC-sets
    // are tiny relative to its size.
    let c2670 = Iscas85::C2670.build();
    let c3540 = Iscas85::C3540.build();
    let sims_per_gate = |nl: &unit_delay_sim::prelude::Netlist| {
        let sim = PcSetSimulator::compile(nl).unwrap();
        sim.stats().gate_simulations as f64 / nl.gate_count() as f64
    };
    assert!(
        sims_per_gate(&c2670) * 3.0 < sims_per_gate(&c3540),
        "c2670's PC-sets are no longer anomalously small"
    );
}

#[test]
fn suite_calibration_is_stable() {
    // The published statistics every table depends on.
    for circuit in Iscas85::ALL {
        let nl = circuit.build();
        let target = circuit.target();
        let levels = levelize(&nl).unwrap();
        assert_eq!(
            (levels.depth as usize + 1).div_ceil(32),
            target.words,
            "{circuit}: word count drifted"
        );
        if circuit != Iscas85::C6288 {
            assert_eq!(
                nl.gate_count(),
                target.gates,
                "{circuit}: gate count drifted"
            );
            assert_eq!(levels.depth, target.depth, "{circuit}: depth drifted");
        }
    }
}
