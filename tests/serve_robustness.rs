//! Overload and lifecycle contract of `udsim serve`: a real daemon on
//! an ephemeral port, driven over raw TCP into the corners the happy
//! path never visits — a saturated admission queue (429 +
//! `Retry-After`), a blown per-request deadline (504 with partial-work
//! accounting), keep-alive connection reuse with a clean close, an
//! observable drain (`/readyz` flips to 503 while queued work
//! finishes), and async-job cancellation that actually stops the run.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use unit_delay_sim::core::telemetry::json::Json;
use unit_delay_sim::netlist::bench_format;
use unit_delay_sim::netlist::generators::random::{layered, LayeredConfig};

const C17: &str = "INPUT(1)\nINPUT(2)\nINPUT(3)\nINPUT(6)\nINPUT(7)\nOUTPUT(22)\nOUTPUT(23)\n\
                   10 = NAND(1, 3)\n11 = NAND(3, 6)\n16 = NAND(2, 11)\n19 = NAND(11, 7)\n\
                   22 = NAND(10, 16)\n23 = NAND(16, 19)\n";

fn tmpfile(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    std::fs::create_dir_all(&dir).expect("tmpdir exists");
    dir.join(name)
}

struct Daemon {
    child: Child,
    addr: String,
    stderr: BufReader<std::process::ChildStderr>,
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn spawn_daemon(extra: &[&str]) -> Daemon {
    let mut child = Command::new(env!("CARGO_BIN_EXE_udsim"))
        .args(["serve", "--addr", "127.0.0.1:0", "--allow-quit"])
        .args(extra)
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("daemon spawns");
    let mut stderr = BufReader::new(child.stderr.take().expect("stderr piped"));
    let mut line = String::new();
    stderr.read_line(&mut line).expect("announcement line");
    let addr = line
        .split("http://")
        .nth(1)
        .unwrap_or_else(|| panic!("no announcement in {line:?}"))
        .trim()
        .to_owned();
    Daemon {
        child,
        addr,
        stderr,
    }
}

/// One raw one-shot exchange (`Connection: close`); returns
/// (status, headers, body).
fn exchange(addr: &str, raw: &str) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(raw.as_bytes()).expect("send");
    let mut reply = String::new();
    stream.read_to_string(&mut reply).expect("full response");
    split_response(&reply)
}

fn split_response(reply: &str) -> (u16, String, String) {
    let status = reply
        .split_whitespace()
        .nth(1)
        .expect("status line")
        .parse()
        .expect("numeric status");
    let (head, body) = reply.split_once("\r\n\r\n").unwrap_or((reply, ""));
    (status, head.to_owned(), body.to_owned())
}

fn get(addr: &str, path: &str) -> (u16, String, String) {
    exchange(
        addr,
        &format!("GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"),
    )
}

fn post(addr: &str, path: &str, body: &str) -> (u16, String, String) {
    exchange(
        addr,
        &format!(
            "POST {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\
             Content-Length: {}\r\n\r\n{body}",
            body.len()
        ),
    )
}

fn delete(addr: &str, path: &str) -> (u16, String, String) {
    exchange(
        addr,
        &format!("DELETE {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"),
    )
}

/// A body that keeps a worker busy for a while: the per-vector cancel
/// checks make the exact runtime irrelevant as long as it is "long".
fn heavy_body(count: u64) -> String {
    format!(
        "{{\"bench\":{},\"name\":\"c17\",\"random\":{{\"count\":{count},\"seed\":9}}}}",
        Json::Str(C17.to_owned()).render()
    )
}

/// Reads one Content-Length-framed response off a keep-alive stream.
fn read_one_response(reader: &mut BufReader<TcpStream>) -> (u16, String, String) {
    let mut head = String::new();
    loop {
        let mut line = String::new();
        assert!(
            reader.read_line(&mut line).expect("response line") > 0,
            "unexpected EOF"
        );
        if line == "\r\n" {
            break;
        }
        head.push_str(&line);
    }
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .expect("status line")
        .parse()
        .unwrap();
    let length: usize = head
        .lines()
        .find_map(|l| {
            l.to_ascii_lowercase()
                .strip_prefix("content-length:")
                .map(str::to_owned)
        })
        .expect("content-length header")
        .trim()
        .parse()
        .unwrap();
    let mut body = vec![0u8; length];
    reader.read_exact(&mut body).unwrap();
    (status, head, String::from_utf8(body).unwrap())
}

fn quit(mut daemon: Daemon) {
    let (status, _, _) = post(&daemon.addr, "/quitquitquit", "");
    assert_eq!(status, 200);
    let exit = daemon.child.wait().expect("daemon exits");
    assert_eq!(exit.code(), Some(0), "clean shutdown exits 0");
    let mut rest = String::new();
    daemon
        .stderr
        .read_to_string(&mut rest)
        .expect("stderr drains");
    assert!(rest.contains("goodbye"), "{rest}");
}

#[test]
fn saturated_queue_sheds_with_retry_after() {
    // One worker, a queue of one: the third concurrent connection has
    // nowhere to go and must be shed by the acceptor immediately.
    let daemon = spawn_daemon(&[
        "--workers",
        "1",
        "--queue",
        "1",
        "--idle-timeout-ms",
        "3000",
    ]);
    let addr = &daemon.addr;

    // Connection A occupies the only worker for its keep-alive life.
    let a = TcpStream::connect(addr.as_str()).unwrap();
    let mut a_reader = BufReader::new(a.try_clone().unwrap());
    (&a).write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n")
        .unwrap();
    let (status, _, _) = read_one_response(&mut a_reader);
    assert_eq!(status, 200, "worker owns connection A");

    // Connection B fills the queue (it never even sends a byte).
    let b = TcpStream::connect(addr.as_str()).unwrap();
    std::thread::sleep(Duration::from_millis(200));

    // Connection C: queue full, shed instantly with 429 + Retry-After
    // without the client sending anything.
    let mut c = TcpStream::connect(addr.as_str()).unwrap();
    c.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut shed = String::new();
    c.read_to_string(&mut shed).expect("shed response");
    let (status, head, body) = split_response(&shed);
    assert_eq!(status, 429, "{shed}");
    assert!(head.contains("Retry-After: 1"), "{head}");
    assert!(body.contains("overloaded"), "{body}");

    // Freeing the worker lets the queued connection B get served: the
    // queue delayed it, never dropped it.
    drop(a_reader);
    drop(c);
    (&b).write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n")
        .unwrap();
    let mut served = String::new();
    (&b).read_to_string(&mut served).expect("b served");
    assert_eq!(split_response(&served).0, 200, "{served}");
    drop(b);

    quit(daemon);
}

#[test]
fn blown_deadline_answers_504_with_partial_work() {
    let stats = tmpfile("deadline_stats.json");
    let daemon = spawn_daemon(&[
        "--request-timeout-ms",
        "1",
        "--stats",
        stats.to_str().unwrap(),
    ]);
    let addr = &daemon.addr;

    let (status, _, body) = post(addr, "/simulate", &heavy_body(1_000_000));
    assert_eq!(status, 504, "{body}");
    assert!(body.contains("deadline exceeded"), "{body}");

    let (_, _, metrics) = get(addr, "/metrics");
    assert!(metrics.contains("uds_serve_timeouts 1"), "{metrics}");
    // The latency SLO histogram saw the request.
    assert!(
        metrics.contains("uds_serve_request_ms_bucket{le=\"+Inf\"}"),
        "{metrics}"
    );

    quit(daemon);
    // The final snapshot carries the partial-work disposition too.
    let stats_doc = Json::parse(std::fs::read_to_string(&stats).unwrap().trim()).unwrap();
    let counters = stats_doc.get("counters").expect("counters");
    assert_eq!(counters.get("serve.timeouts").unwrap().as_u64(), Some(1));
    assert!(counters.get("serve.timeout_vectors_done").is_some());
}

#[test]
fn keep_alive_reuses_one_connection_for_many_requests() {
    let reqlog = tmpfile("keepalive_reqlog.ndjson");
    let daemon = spawn_daemon(&["--reqlog", reqlog.to_str().unwrap()]);
    let addr = &daemon.addr;

    let stream = TcpStream::connect(addr.as_str()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    for _ in 0..3 {
        (&stream)
            .write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n")
            .unwrap();
        let (status, head, body) = read_one_response(&mut reader);
        assert_eq!((status, body.as_str()), (200, "ok\n"));
        assert!(head.to_ascii_lowercase().contains("keep-alive"), "{head}");
    }
    (&stream)
        .write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n")
        .unwrap();
    let (status, head, _) = read_one_response(&mut reader);
    assert_eq!(status, 200);
    assert!(
        head.to_ascii_lowercase().contains("connection: close"),
        "{head}"
    );
    let mut rest = String::new();
    reader.read_to_string(&mut rest).unwrap();
    assert!(rest.is_empty(), "server closed cleanly after close");
    drop(stream);

    quit(daemon);
    // All four requests logged against the same connection id with
    // ascending per-connection ordinals.
    let log = std::fs::read_to_string(&reqlog).unwrap();
    let lines: Vec<Json> = log
        .lines()
        .map(|l| Json::parse(l).expect("reqlog parses"))
        .filter(|l| l.get("path").and_then(Json::as_str) == Some("/healthz"))
        .collect();
    assert_eq!(lines.len(), 4, "{log}");
    let conn = lines[0].get("connection_id").unwrap().as_u64().unwrap();
    for (i, line) in lines.iter().enumerate() {
        assert_eq!(line.get("connection_id").unwrap().as_u64(), Some(conn));
        assert_eq!(
            line.get("requests_on_connection").unwrap().as_u64(),
            Some(i as u64 + 1)
        );
    }
}

#[test]
fn drain_flips_readyz_and_finishes_queued_work() {
    let stats = tmpfile("drain_stats.json");
    let daemon = spawn_daemon(&[
        "--workers",
        "3",
        "--idle-timeout-ms",
        "3000",
        "--stats",
        stats.to_str().unwrap(),
    ]);
    let addr = &daemon.addr;

    // A keep-alive connection pins one worker, guaranteeing the drain
    // stays open long enough to observe.
    let holder = TcpStream::connect(addr.as_str()).unwrap();
    let mut holder_reader = BufReader::new(holder.try_clone().unwrap());
    (&holder)
        .write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n")
        .unwrap();
    assert_eq!(read_one_response(&mut holder_reader).0, 200);

    // Queue real work, then ask for the drain.
    let (status, _, submitted) = post(addr, "/jobs", &heavy_body(20_000));
    assert_eq!(status, 202, "{submitted}");
    let (status, _, _) = post(addr, "/quitquitquit", "");
    assert_eq!(status, 200);

    // The drain is observable: readiness flips, work is refused with a
    // retry hint, but the daemon still answers.
    let (status, _, body) = get(addr, "/readyz");
    assert_eq!((status, body.as_str()), (503, "draining\n"));
    let (status, head, _) = post(addr, "/simulate", &heavy_body(1));
    assert_eq!(status, 503, "drain sheds new work");
    assert!(head.contains("Retry-After"), "{head}");

    // Release the pinned worker; the daemon finishes the job and exits.
    drop(holder_reader);
    drop(holder);
    let mut daemon = daemon;
    let exit = daemon.child.wait().expect("daemon exits");
    assert_eq!(exit.code(), Some(0));
    drop(daemon);

    let stats_doc = Json::parse(std::fs::read_to_string(&stats).unwrap().trim()).unwrap();
    let counters = stats_doc.get("counters").expect("counters");
    assert_eq!(
        counters.get("serve.jobs.completed").unwrap().as_u64(),
        Some(1),
        "the queued job finished during the drain"
    );
}

#[test]
fn cancelled_job_stops_and_reports_gone() {
    // Two workers: the job pins one, the second keeps serving the
    // status polls and the DELETE (on a one-core box the default pool
    // size is 1, and every poll would queue behind the job itself).
    let daemon = spawn_daemon(&["--workers", "2"]);
    let addr = &daemon.addr;

    // A circuit big enough that even the compiled word-parallel
    // engines need real time per vector — the cancel must land while
    // the batch is running. Kept small enough that the *compile* stays
    // quick: cancellation is cooperative and only polls between
    // vectors, so an enormous compile would stall the cancel.
    let heavy = layered(&LayeredConfig::new("heavy", 2_000, 32)).expect("generator");
    let body = format!(
        "{{\"bench\":{},\"name\":\"heavy\",\"random\":{{\"count\":1000000,\"seed\":9}}}}",
        Json::Str(bench_format::write(&heavy)).render()
    );
    let (status, _, submitted) = post(addr, "/jobs", &body);
    assert_eq!(status, 202, "{submitted}");
    let id = Json::parse(submitted.trim())
        .unwrap()
        .get("job")
        .unwrap()
        .as_u64()
        .unwrap();

    // Wait for it to actually run, then cancel.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let (_, _, text) = get(addr, &format!("/jobs/{id}"));
        let state = Json::parse(text.trim())
            .unwrap()
            .get("state")
            .unwrap()
            .as_str()
            .unwrap()
            .to_owned();
        if state == "running" {
            break;
        }
        assert_ne!(state, "done", "job finished before it could be cancelled");
        assert!(Instant::now() < deadline, "job never started running");
        std::thread::sleep(Duration::from_millis(5));
    }
    let (status, _, body) = delete(addr, &format!("/jobs/{id}"));
    assert_eq!(status, 202, "{body}");
    assert!(body.contains("cancelling"), "{body}");

    // The run stops mid-batch: terminal state `cancelled`, partial
    // progress, result gone. The wait covers a slow debug-build
    // compile — the cancel can only land once vectors start.
    let deadline = Instant::now() + Duration::from_secs(60);
    let final_doc = loop {
        let (_, _, text) = get(addr, &format!("/jobs/{id}"));
        let doc = Json::parse(text.trim()).unwrap();
        let state = doc.get("state").unwrap().as_str().unwrap().to_owned();
        if state == "cancelled" {
            break doc;
        }
        assert_ne!(state, "done", "cancellation lost the race it must win");
        assert!(Instant::now() < deadline, "cancel never landed");
        std::thread::sleep(Duration::from_millis(5));
    };
    let done = final_doc.get("vectors_done").unwrap().as_u64().unwrap();
    assert!(done < 1_000_000, "run stopped early, not at completion");
    let (status, _, _) = get(addr, &format!("/jobs/{id}/result"));
    assert_eq!(status, 410, "cancelled results are gone");

    quit(daemon);
}
